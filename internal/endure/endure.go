// Package endure is the endurance plane: long-horizon namespace-aging
// runs over the open-loop population, cut into segments by periodic
// checkpoints. At each checkpoint the cluster quiesces (cluster.Quiesce
// — pause, drain, verify, tombstone GC), the overlay-degradation curve
// gains a row (ops/sec, tombstone density, name-index read-through
// misses per lookup), simfsck validates every cross-structure
// invariant, and the full simulation state is serialized to a versioned
// snapshot file. A run restored from any checkpoint executes the exact
// event sequence of the uninterrupted run from that point on — final
// digests are bit-identical — because the quiesce/resume protocol runs
// identically whether or not a snapshot is written.
//
// The aging fix: under sustained create/delete churn the overlay's
// tombstone map grows without bound, taxing every base-ID resolution
// with a hash probe and the GC with a full map scan. When the tombstone
// count crosses CompactAt the runner installs the dense bitset
// representation (namespace.CompactTombstones) — a representation-only
// swap, so digests are unchanged, which the tests pin.
package endure

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"dynmds/internal/chaos"
	"dynmds/internal/cluster"
	"dynmds/internal/fsgen"
	"dynmds/internal/metrics"
	"dynmds/internal/sim"
)

// DefaultCompactAt is the tombstone count at which the runner installs
// the compacted bitset representation.
const DefaultCompactAt = 65536

// Options configures an endurance run.
type Options struct {
	// Cluster is the run configuration; it must use the open-loop
	// traffic plane and a churn-capable op mix.
	Cluster cluster.Config
	// Every is the checkpoint cadence in virtual time. Must exceed the
	// quiesce drain window. A final checkpoint always lands at
	// Cluster.Duration.
	Every sim.Time
	// Dir is where snapshot files are written (created if missing);
	// empty disables writing (the quiesce protocol still runs, so a run
	// with Dir set and one without are bit-identical).
	Dir string
	// CompactAt is the tombstone-GC threshold: when the tombstone count
	// reaches it at a checkpoint, the overlay switches to the compacted
	// bitset. 0 means DefaultCompactAt; negative disables the fix (to
	// measure the unfixed degradation curve).
	CompactAt int
	// Fsck disables the per-checkpoint consistency check when false...
	// it defaults on via Normalize; set SkipFsck to opt out.
	SkipFsck bool
	// OnRow, when set, observes each degradation-curve row as it is
	// produced (progress reporting).
	OnRow func(Row)
}

// Normalize validates and defaults the options. The op mix defaults to
// a churn-heavy blend (the plain open-loop default has no unlink, which
// would leave nothing to age), and ChurnBase — the reserve of frozen
// base files the unlink stream consumes first — defaults to the
// expected unlink draws over the horizon. Both defaults are applied
// identically by Run, Restore, and ValidateSnapshot, so the config
// hash recorded in a snapshot matches on restore.
func (o *Options) Normalize() error {
	if o.Cluster.OpenLoop == nil {
		return fmt.Errorf("endure: endurance runs need the open-loop traffic plane")
	}
	if o.Every <= cluster.QuiesceDrain {
		return fmt.Errorf("endure: checkpoint cadence %v must exceed the %v quiesce drain",
			o.Every, cluster.QuiesceDrain)
	}
	if o.Cluster.Duration < o.Every {
		return fmt.Errorf("endure: duration %v shorter than the checkpoint cadence %v",
			o.Cluster.Duration, o.Every)
	}
	if o.CompactAt == 0 {
		o.CompactAt = DefaultCompactAt
	}
	pc := *o.Cluster.OpenLoop // never mutate the caller's config through the pointer
	if pc.MixStat+pc.MixReaddir+pc.MixChmod+pc.MixCreate+pc.MixRename+pc.MixUnlink <= 0 {
		pc.MixStat, pc.MixReaddir, pc.MixChmod = 55, 10, 5
		pc.MixCreate, pc.MixRename, pc.MixUnlink = 12, 3, 15
	}
	if pc.ChurnBase == 0 && pc.MixUnlink > 0 {
		total := pc.MixStat + pc.MixReaddir + pc.MixChmod + pc.MixCreate + pc.MixRename + pc.MixUnlink
		clients := pc.Clients
		if clients <= 0 {
			clients = o.Cluster.NumMDS * o.Cluster.ClientsPerMDS
		}
		rate := pc.Rate
		if rate <= 0 {
			rate = 10
		}
		expect := rate * float64(clients) * o.Cluster.Duration.Seconds() * pc.MixUnlink / total
		pc.ChurnBase = int(expect)
		if pc.ChurnBase < 1024 {
			pc.ChurnBase = 1024
		}
	}
	o.Cluster.OpenLoop = &pc
	return nil
}

// Instants returns the checkpoint instants for a cadence and duration:
// every multiple of the cadence inside the run, plus the run's end. A
// multiple within one quiesce drain of the end merges into the final
// checkpoint — the segment between them would hold no serving time
// (each quiesce consumes a drain window of virtual time before the next
// segment's traffic resumes).
func Instants(every, duration sim.Time) []sim.Time {
	var out []sim.Time
	for t := every; t < duration; t += every {
		out = append(out, t)
	}
	if n := len(out); n > 0 && duration-out[n-1] <= cluster.QuiesceDrain {
		out = out[:n-1]
	}
	return append(out, duration)
}

// Row is one point on the overlay-degradation curve, produced at each
// checkpoint before simfsck runs (the checker's own tree walk would
// otherwise pollute the read-through counters).
type Row struct {
	Index int      `json:"index"`
	At    sim.Time `json:"at"`
	// OpsPerSec is completed client ops per virtual second over the
	// segment ending at this checkpoint.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Tombstones and TombstoneDensity measure overlay aging: destroyed
	// base inodes, absolute and as a fraction of the pristine namespace.
	Tombstones       int     `json:"tombstones"`
	TombstoneDensity float64 `json:"tombstone_density"`
	// LazyMissRate is name-index read-through misses per read-through
	// lookup over the segment (the aged overlay's lookup tax).
	LazyMissRate float64 `json:"lazy_miss_rate"`
	// LiveInodes is the namespace size at the checkpoint.
	LiveInodes int `json:"live_inodes"`
	// Compacted reports whether the tombstone bitset fix is installed.
	Compacted bool `json:"compacted"`
	// Path is the snapshot file, empty when writing is disabled.
	Path string `json:"path,omitempty"`
}

// Result is a finished endurance run.
type Result struct {
	Rows    []Row           `json:"rows"`
	Cluster *cluster.Result `json:"-"`
	// Digest fingerprints the run outcome; restored runs must reproduce
	// the uninterrupted run's digest exactly.
	Digest string `json:"digest"`
}

// FsckError reports a simfsck violation at a checkpoint; the index
// identifies the snapshot to restart shrinking from.
type FsckError struct {
	Checkpoint int
	At         sim.Time
	Err        error
}

func (e *FsckError) Error() string {
	return fmt.Sprintf("endure: checkpoint %d (t=%.3fs) failed simfsck: %v",
		e.Checkpoint, e.At.Seconds(), e.Err)
}

func (e *FsckError) Unwrap() error { return e.Err }

// Digest fingerprints a run's externally observable outcome. The
// fields match the determinism convention used across the test suite.
func Digest(r *cluster.Result) string {
	return fmt.Sprintf("iss=%d comp=%d ops=%d p50=%x p99=%x p999=%x mean=%x fwd=%x net=%+v",
		r.Issued, r.Completed, r.MeasuredOps,
		math.Float64bits(r.LatencyP50), math.Float64bits(r.LatencyP99),
		math.Float64bits(r.LatencyP999), math.Float64bits(r.MeanLatency),
		math.Float64bits(r.ForwardFrac), r.Net)
}

// runState threads the per-segment bookkeeping through a run.
type runState struct {
	opt      *Options
	c        *cluster.Cluster
	base     chaos.Baseline
	instants []sim.Time
	rows     []Row

	baseInodes    int
	prevAt        sim.Time
	prevCompleted uint64
	prevLookups   uint64
	prevMisses    uint64
}

// ensureFrozen generates the frozen namespace when the config does not
// already share one. The endurance plane requires the overlay-with-base
// tree form: tombstones — the thing aging measures — only exist against
// a frozen base layer.
func ensureFrozen(cfg *cluster.Config) error {
	if cfg.Snapshot != nil {
		return nil
	}
	fs := cfg.FS
	fs.Seed = cfg.Seed
	frozen, err := fsgen.GenerateFrozen(fs)
	if err != nil {
		return err
	}
	cfg.Snapshot = frozen
	return nil
}

// Run executes a fresh endurance run from t=0.
func Run(opt Options) (*Result, error) {
	if err := opt.Normalize(); err != nil {
		return nil, err
	}
	if err := ensureFrozen(&opt.Cluster); err != nil {
		return nil, err
	}
	c, err := cluster.New(opt.Cluster)
	if err != nil {
		return nil, err
	}
	if err := c.EndureCheck(); err != nil {
		return nil, err
	}
	st := newRunState(&opt, c, chaos.Capture(c))
	c.StartEndure()
	return st.runFrom(0)
}

func newRunState(opt *Options, c *cluster.Cluster, base chaos.Baseline) *runState {
	return &runState{
		opt:        opt,
		c:          c,
		base:       base,
		instants:   Instants(opt.Every, opt.Cluster.Duration),
		baseInodes: c.Tree().Len(),
	}
}

// runFrom executes checkpoints from (0-based) index first to the end,
// assuming the cluster is armed and positioned before instants[first].
func (st *runState) runFrom(first int) (*Result, error) {
	for k := first; k < len(st.instants); k++ {
		if err := st.segment(k); err != nil {
			return nil, err
		}
		if k < len(st.instants)-1 {
			st.c.Resume()
		}
	}
	res := st.c.Collect()
	return &Result{Rows: st.rows, Cluster: res, Digest: Digest(res)}, nil
}

// segment runs the cluster to checkpoint k and executes the checkpoint
// protocol: quiesce, compaction check, degradation row, simfsck,
// snapshot write. The caller resumes (except after the final one).
func (st *runState) segment(k int) error {
	c, at := st.c, st.instants[k]
	c.RunTo(at)
	if err := c.Quiesce(); err != nil {
		return fmt.Errorf("endure: checkpoint %d (t=%.3fs): %w", k, at.Seconds(), err)
	}
	tree := c.Tree()
	if st.opt.CompactAt > 0 && !tree.TombstonesCompacted() &&
		tree.TombstoneCount() >= st.opt.CompactAt {
		tree.CompactTombstones()
	}
	st.rows = append(st.rows, st.row(k, at))
	if !st.opt.SkipFsck {
		if err := chaos.Fsck(c, st.base); err != nil {
			return &FsckError{Checkpoint: k, At: at, Err: err}
		}
	}
	// Re-baseline the read-through counters after the checker's walk so
	// its probes don't pollute the next segment's rate.
	st.prevLookups, st.prevMisses = tree.LazyStats()
	if st.opt.Dir != "" {
		path, err := st.writeSnapshot(k)
		if err != nil {
			return err
		}
		st.rows[len(st.rows)-1].Path = path
	}
	if st.opt.OnRow != nil {
		st.opt.OnRow(st.rows[len(st.rows)-1])
	}
	return nil
}

// row produces the degradation-curve point for checkpoint k. Call
// after the quiesce and before simfsck.
func (st *runState) row(k int, at sim.Time) Row {
	c := st.c
	tree := c.Tree()
	completed := c.Pop.Completed()
	lookups, misses := tree.LazyStats()
	// Serving span: segments after the first start at the previous
	// checkpoint's resume point, one quiesce drain past its instant.
	seg := at - st.prevAt
	if k > 0 {
		seg -= cluster.QuiesceDrain
	}
	r := Row{
		Index:      k,
		At:         at,
		Tombstones: tree.TombstoneCount(),
		LiveInodes: tree.Len(),
		Compacted:  tree.TombstonesCompacted(),
	}
	if seg > 0 {
		r.OpsPerSec = float64(completed-st.prevCompleted) / seg.Seconds()
	}
	if st.baseInodes > 0 {
		r.TombstoneDensity = float64(r.Tombstones) / float64(st.baseInodes)
	}
	if dl := lookups - st.prevLookups; dl > 0 {
		r.LazyMissRate = float64(misses-st.prevMisses) / float64(dl)
	}
	st.prevAt, st.prevCompleted = at, completed
	st.prevLookups, st.prevMisses = lookups, misses
	return r
}

// snapshotPath names checkpoint k's snapshot file inside dir.
func snapshotPath(dir string, k int) string {
	return filepath.Join(dir, fmt.Sprintf("ck-%03d.snap", k))
}

func (st *runState) writeSnapshot(k int) (string, error) {
	if err := os.MkdirAll(st.opt.Dir, 0o755); err != nil {
		return "", fmt.Errorf("endure: %w", err)
	}
	path := snapshotPath(st.opt.Dir, k)
	data := encodeSnapshot(st.c, &st.opt.Cluster, k, st.c.Now())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("endure: %w", err)
	}
	return path, nil
}

// Restore resumes an endurance run from a snapshot file. The options
// must describe the same run (config digest and shard count are
// cross-checked against the file header); the run continues through the
// remaining checkpoints to Duration, producing rows for them only.
func Restore(opt Options, path string) (*Result, error) {
	if err := opt.Normalize(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("endure: %w", err)
	}
	hdr, r, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	if err := hdr.check(&opt.Cluster); err != nil {
		return nil, err
	}
	if err := hdr.position(opt.Every, opt.Cluster.Duration); err != nil {
		return nil, err
	}
	if err := ensureFrozen(&opt.Cluster); err != nil {
		return nil, err
	}
	c, err := cluster.New(opt.Cluster)
	if err != nil {
		return nil, err
	}
	if err := c.EndureCheck(); err != nil {
		return nil, err
	}
	base := chaos.Capture(c)
	base.PriorMaxID = hdr.MaxID
	// Density rows divide by the pristine tree size; measure it before
	// the restore ages the tree, as newRunState does in a fresh run.
	pristineInodes := c.Tree().Len()
	// Future-only schedule entries first: their event sequence numbers
	// must precede everything the resume posts, matching the
	// uninterrupted run's t=0 scheduling.
	c.StartEndureRestored(hdr.ResumeAt)
	if err := c.RestoreCheckpoint(r); err != nil {
		return nil, fmt.Errorf("endure: restoring %s: %w", path, err)
	}
	// Match the checkpointing run's representation so the restored
	// segments pay the same (post-fix) lookup costs.
	if opt.CompactAt > 0 && !c.Tree().TombstonesCompacted() &&
		c.Tree().TombstoneCount() >= opt.CompactAt {
		c.Tree().CompactTombstones()
	}
	st := newRunState(&opt, c, base)
	st.baseInodes = pristineInodes
	st.prevAt = hdr.At()
	st.prevCompleted = c.Pop.Completed()
	st.prevLookups, st.prevMisses = c.Tree().LazyStats()
	c.RunTo(hdr.ResumeAt)
	c.Resume()
	return st.runFrom(hdr.Checkpoint + 1)
}

// CurveTable renders the degradation curve as an aligned table.
func (res *Result) CurveTable() string {
	t := metrics.NewTable("t(s)", "ops/s", "tombstones", "density", "lazy-miss", "live", "compacted")
	for _, r := range res.Rows {
		t.AddRow(
			fmt.Sprintf("%.1f", r.At.Seconds()),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			r.Tombstones,
			fmt.Sprintf("%.4f", r.TombstoneDensity),
			fmt.Sprintf("%.4f", r.LazyMissRate),
			r.LiveInodes,
			fmt.Sprintf("%v", r.Compacted),
		)
	}
	return t.String()
}

// Drift returns the throughput degradation over the horizon: 1 −
// last/peak over the curve rows (0 when the last row is the peak, or
// with fewer than two rows).
func (res *Result) Drift() float64 {
	if len(res.Rows) < 2 {
		return 0
	}
	peak := 0.0
	for _, r := range res.Rows {
		if r.OpsPerSec > peak {
			peak = r.OpsPerSec
		}
	}
	last := res.Rows[len(res.Rows)-1].OpsPerSec
	if peak <= 0 || last >= peak {
		return 0
	}
	return 1 - last/peak
}

// IsFsck reports whether err wraps a checkpoint consistency violation
// and returns it.
func IsFsck(err error) (*FsckError, bool) {
	var fe *FsckError
	ok := errors.As(err, &fe)
	return fe, ok
}

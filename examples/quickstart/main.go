// Quickstart: run a library scenario plan end to end — parse, validate,
// compile, sweep, report. The plan DSL is printed first so the whole
// scenario is visible; `mdsim -plan simfs-campaign -quick` runs the
// identical path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dynmds/internal/harness"
	"dynmds/internal/plan/library"
)

func main() {
	p, ok := library.ByName("simfs-campaign")
	if !ok {
		log.Fatal("library plan simfs-campaign not found (see mdsim -list-plans)")
	}
	fmt.Println("# the plan, in its canonical DSL form:")
	fmt.Println(p)

	opt := harness.Options{Quick: true}
	runs, err := harness.RunPlan(p, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.WritePlanReport(os.Stdout, p, runs); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("The acts retarget the live population mid-run: the scan phase is")
	fmt.Println("readdir-heavy at low skew, then bulk-stat triples the arrival rate")
	fmt.Println("and concentrates it on the entries the scan surfaced.")
}

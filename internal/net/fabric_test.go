package net

import (
	"testing"

	"dynmds/internal/sim"
)

func testFixed() Fixed { return Fixed{Net: 200, Fwd: 50} }

func TestFixedDelays(t *testing.T) {
	f := testFixed()
	cases := []struct {
		c    Class
		want sim.Time
	}{
		{Request, 200}, {Reply, 200},
		{Forward, 50}, {FetchReq, 50}, {FetchResp, 50},
		{ReplicaInstall, 50}, {Coherence, 50}, {EvictNotice, 50},
		{WriteFlush, 50}, {StatCallback, 50},
		{LHPropagate, 100},
	}
	for _, tc := range cases {
		if got := f.Delay(nil, tc.c, Bytes(tc.c), 0); got != tc.want {
			t.Errorf("Fixed delay(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestFabricDeliversWithFixedLatency(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, 2, testFixed())
	var deliveredAt sim.Time
	fab.Send(Forward, 0, 1, Bytes(Forward), func(a, _ any) {
		deliveredAt = eng.Now()
	}, nil, nil)
	eng.Run()
	if deliveredAt != 50 {
		t.Fatalf("delivered at %v, want 50", deliveredAt)
	}
	if got := fab.Class(Forward); got.Sent != 1 || got.Delivered != 1 || got.Bytes != uint64(Bytes(Forward)) {
		t.Fatalf("class stats = %+v", got)
	}
	if ls := fab.LinkBetween(0, 1); ls.Messages != 1 || ls.MaxDepth != 1 {
		t.Fatalf("link stats = %+v", ls)
	}
	if fab.InFlight() != 0 || fab.LiveEnvelopes() != 0 {
		t.Fatalf("in flight = %d, live = %d after drain", fab.InFlight(), fab.LiveEnvelopes())
	}
}

// TestQueuedSerializes checks that two messages entering the same link
// at the same instant transmit back to back, while a message on a
// different link is unaffected.
func TestQueuedSerializes(t *testing.T) {
	eng := sim.NewEngine()
	// 1 byte per microsecond: a 64-byte message occupies the link 64 us.
	q := &Queued{Base: testFixed(), Bandwidth: 1e6}
	fab := NewFabric(eng, 3, q)
	var at []sim.Time
	note := func(a, _ any) { at = append(at, eng.Now()) }
	fab.Send(FetchReq, 0, 1, 64, note, nil, nil) // 64 ser + 50 base = 114
	fab.Send(FetchReq, 0, 1, 64, note, nil, nil) // queued: 128 + 50 = 178
	fab.Send(FetchReq, 0, 2, 64, note, nil, nil) // own link: 114
	eng.Run()
	want := []sim.Time{114, 114, 178}
	if len(at) != 3 || at[0] != want[0] || at[1] != want[1] || at[2] != want[2] {
		t.Fatalf("deliveries at %v, want %v", at, want)
	}
	if ls := fab.LinkBetween(0, 1); ls.MaxDepth != 2 {
		t.Fatalf("link 0->1 max depth = %d, want 2", ls.MaxDepth)
	}
}

// TestQueuedInfiniteBandwidthMatchesFixed: with no serialization delay
// the queued model must price every hop exactly like Fixed.
func TestQueuedInfiniteBandwidthMatchesFixed(t *testing.T) {
	f := testFixed()
	q := &Queued{Base: f, Bandwidth: 1e18}
	var l Link
	for c := Class(0); c < Class(NumClasses); c++ {
		if got, want := q.Delay(&l, c, Bytes(c), 1000), f.Delay(nil, c, Bytes(c), 1000); got != want {
			t.Errorf("queued(inf bw) delay(%v) = %v, fixed = %v", c, got, want)
		}
	}
}

// TestEnvelopePoolReuse: steady-state sends recycle envelopes rather
// than growing the pool without bound.
func TestEnvelopePoolReuse(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, 2, testFixed())
	for i := 0; i < 100; i++ {
		fab.Send(Coherence, 0, 1, Bytes(Coherence), func(a, b any) {}, nil, nil)
		eng.Run()
	}
	if fab.LiveEnvelopes() != 0 {
		t.Fatalf("%d live envelopes after drain", fab.LiveEnvelopes())
	}
	if len(fab.pool) != 1 {
		t.Fatalf("pool grew to %d envelopes; sequential sends should reuse one", len(fab.pool))
	}
}

func TestSummaryAndTable(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, 2, testFixed())
	fab.Send(Request, fab.ClientEdge(), 0, Bytes(Request), func(a, b any) {}, nil, nil)
	fab.Send(Reply, 0, fab.ClientEdge(), ReplyBytes(3), func(a, b any) {}, nil, nil)
	eng.Run()
	s := fab.Summary()
	if s.Model != ModelFixed {
		t.Fatalf("model = %q", s.Model)
	}
	if s.Messages != 2 {
		t.Fatalf("messages = %d", s.Messages)
	}
	wantBytes := uint64(Bytes(Request) + ReplyBytes(3))
	if s.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", s.Bytes, wantBytes)
	}
	if s.MaxQueueDepth != 1 {
		t.Fatalf("max queue depth = %d", s.MaxQueueDepth)
	}
	tab := s.Table()
	if tab == "" {
		t.Fatal("empty table")
	}
}

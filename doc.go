// Package dynmds is a simulation-based reproduction of "Dynamic
// Metadata Management for Petabyte-scale File Systems" (Weil, Pollack,
// Brandt, Miller; SC 2004) — the dynamic subtree partitioning design
// that became the Ceph metadata server.
//
// The public surface is organised as:
//
//   - internal/cluster — assemble and run complete simulations
//   - internal/harness — the experiments regenerating every paper figure
//   - internal/core — dynamic subtree partitioning, load balancing,
//     traffic control (the paper's contribution)
//   - internal/partition — the comparison strategies (static subtree,
//     file/directory hashing, Lazy Hybrid)
//   - internal/{sim,namespace,fsgen,cache,storage,mds,client,workload,
//     metrics,msg,trace} — the substrates
//
// Entry points: cmd/mdsim (experiments), cmd/fsgen (synthetic
// namespaces), cmd/mdtrace (trace record/replay), and the runnable
// examples under examples/. The benchmarks in bench_test.go regenerate
// each figure's headline number via `go test -bench`.
package dynmds

// Package namespace models the file-system hierarchy whose metadata the
// MDS cluster manages: inodes, directories, paths, and the mutation
// operations that the metadata workload performs (create, unlink, rename,
// chmod, mkdir, link). It also implements the paper's auxiliary anchor
// table (§4.5), the small global table that locates only multiply-linked
// inodes in a world of directory-embedded inodes.
//
// The package is pure data structure: it knows nothing about simulation
// time, caching, or distribution. One Tree instance is the ground truth
// shared by the whole simulated cluster; MDS caches hold references to
// its inodes.
package namespace

import (
	"fmt"
	"strings"
)

// InodeID uniquely identifies an inode within a Tree. IDs are allocated
// sequentially and never reused, which is exactly the "alternative
// (though simpler) mechanism for allocating unique identifiers" the paper
// requires once there is no global inode table.
type InodeID uint64

// Kind distinguishes files from directories.
type Kind uint8

// Inode kinds.
const (
	File Kind = iota
	Dir
)

func (k Kind) String() string {
	if k == Dir {
		return "dir"
	}
	return "file"
}

// Mode is a simplified permission word; the simulation only cares whether
// permission-affecting updates happen, not their exact semantics.
type Mode uint16

// Inode is a file or directory metadata record. Directory inodes carry
// their children (embedded-inode storage groups a directory's entries and
// the child inodes together on disk, §4.5).
type Inode struct {
	ID     InodeID
	Kind   Kind
	Mode   Mode
	Size   int64
	NLink  int // number of directory entries referencing this inode
	parent *Inode
	name   string

	// Directory state (nil/empty for files). Overlay directories share
	// one backing array for their initial child slices (see NewOverlay).
	children   []*Inode
	childIndex map[string]int

	// tree is the owning tree; it backs base-index lookups for overlay
	// trees (non-overlay nodes never consult it).
	tree *Tree
	// lazyIdx marks an overlay directory whose private name index has
	// not been built yet. While set, LookupChild reads the frozen
	// base's shared per-directory name map; the first structural
	// mutation builds childIndex and clears the flag (see expand).
	lazyIdx bool

	// SubtreeInodes counts inodes in the subtree rooted here, including
	// this one (1 for files). Maintained incrementally; used by workload
	// generation, Lazy Hybrid update fan-out, and balancer weights.
	SubtreeInodes int

	// Aux is scratch space for higher layers (e.g. partition epochs,
	// popularity counters). The namespace package never touches it.
	Aux interface{}
}

// Name returns the inode's entry name in its (primary) parent directory.
func (n *Inode) Name() string { return n.name }

// Parent returns the (primary) parent directory, or nil for the root.
func (n *Inode) Parent() *Inode { return n.parent }

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.Kind == Dir }

// NumChildren returns the number of directory entries (0 for files).
func (n *Inode) NumChildren() int { return len(n.children) }

// Child returns the i'th child. Children keep a stable order except that
// removal swaps the last entry into the vacated slot.
func (n *Inode) Child(i int) *Inode { return n.children[i] }

// LookupChild finds a child by name.
func (n *Inode) LookupChild(name string) (*Inode, bool) {
	if n.lazyIdx {
		id, ok := n.tree.base.nodes[n.ID-1].kids[name]
		n.tree.noteLazyLookup(!ok)
		if !ok {
			return nil, false
		}
		return n.tree.node(id), true
	}
	if n.childIndex == nil {
		return nil, false
	}
	i, ok := n.childIndex[name]
	if !ok {
		return nil, false
	}
	return n.children[i], true
}

// Children returns the live child slice. Callers must not mutate it.
func (n *Inode) Children() []*Inode { return n.children }

// Path returns the absolute path of the inode ("/" for the root).
func (n *Inode) Path() string {
	if n.parent == nil {
		return "/"
	}
	var parts []string
	for c := n; c.parent != nil; c = c.parent {
		parts = append(parts, c.name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// Depth returns the number of ancestors (root = 0).
func (n *Inode) Depth() int {
	d := 0
	for c := n.parent; c != nil; c = c.parent {
		d++
	}
	return d
}

// Ancestors returns the chain root..parent (excluding n itself), ordered
// from the root downward. For the root it returns nil.
func (n *Inode) Ancestors() []*Inode {
	var up []*Inode
	for c := n.parent; c != nil; c = c.parent {
		up = append(up, c)
	}
	// reverse to root-first
	for i, j := 0, len(up)-1; i < j; i, j = i+1, j-1 {
		up[i], up[j] = up[j], up[i]
	}
	return up
}

// IsAncestorOf reports whether n is a proper ancestor of other.
func (n *Inode) IsAncestorOf(other *Inode) bool {
	for c := other.parent; c != nil; c = c.parent {
		if c == n {
			return true
		}
	}
	return false
}

func (n *Inode) String() string {
	return fmt.Sprintf("%s(%d,%s)", n.Path(), n.ID, n.Kind)
}

func (n *Inode) attach(child *Inode) error {
	if n.Kind != Dir {
		return fmt.Errorf("namespace: %s is not a directory", n.Path())
	}
	n.expand()
	if n.childIndex == nil {
		n.childIndex = make(map[string]int)
	}
	if _, exists := n.childIndex[child.name]; exists {
		return fmt.Errorf("namespace: %s already contains %q", n.Path(), child.name)
	}
	n.childIndex[child.name] = len(n.children)
	n.children = append(n.children, child)
	child.parent = n
	return nil
}

func (n *Inode) detach(child *Inode) error {
	n.expand()
	i, ok := n.childIndex[child.name]
	if !ok || n.children[i] != child {
		return fmt.Errorf("namespace: %s does not contain %q", n.Path(), child.name)
	}
	last := len(n.children) - 1
	if i != last {
		n.children[i] = n.children[last]
		n.childIndex[n.children[i].name] = i
	}
	n.children = n.children[:last]
	delete(n.childIndex, child.name)
	child.parent = nil
	return nil
}

// adjustSubtreeCount adds delta to the SubtreeInodes of n and every
// ancestor.
func (n *Inode) adjustSubtreeCount(delta int) {
	for c := n; c != nil; c = c.parent {
		c.SubtreeInodes += delta
	}
}

// Package harness defines the experiments that regenerate every figure
// in the paper's evaluation (§5), and a parallel sweep runner that
// executes independent simulation configurations across CPU cores. Each
// simulation itself is single-threaded and deterministic; the sweep's
// parallelism never changes results, only wall-clock time.
package harness

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynmds/internal/cluster"
)

// RunSpec names one simulation configuration.
type RunSpec struct {
	Label string
	Cfg   cluster.Config
}

// RunOne builds and runs a single configuration. Unless snapshot
// sharing is disabled (SetSnapshotSharing), the namespace comes from
// the process-wide snapshot cache: the first run for a given fs config
// generates and freezes it (charged to that run's SetupWall), and every
// other run thaws a private copy-on-write overlay over the shared base.
func RunOne(spec RunSpec) (*cluster.Result, error) {
	cfg := spec.Cfg
	// Apply the process-wide shard request to runs that can use it: the
	// shared OSD pool is incompatible with sharding, and a spec that
	// already chose a count keeps it.
	if k := Shards(); k > 1 && cfg.Shards == 0 && cfg.OSDs == 0 {
		cfg.Shards = k
	}
	var genWall time.Duration
	if SnapshotSharing() && cfg.Snapshot == nil {
		key := cfg.FS
		key.Seed = cfg.Seed // replicate cluster.New's seeding
		snap, wall, err := sharedSnapshot(key)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", spec.Label, err)
		}
		cfg.Snapshot = snap
		genWall = wall
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", spec.Label, err)
	}
	if genWall > 0 {
		cl.AddSetupWall(genWall)
	}
	res := cl.Run()
	account.mu.Lock()
	account.setup += res.SetupWall
	account.run += res.RunWall
	account.runs++
	account.mu.Unlock()
	return res, nil
}

// account aggregates the setup-vs-run wall split across every RunOne in
// the process, so sweep drivers (mdsim -bench-json) can report where a
// figure's real time went without threading accounting through each
// figure function.
var account struct {
	mu    sync.Mutex
	setup time.Duration
	run   time.Duration
	runs  int
}

// ResetSweepAccounting zeroes the aggregate setup/run wall counters.
func ResetSweepAccounting() {
	account.mu.Lock()
	account.setup, account.run, account.runs = 0, 0, 0
	account.mu.Unlock()
}

// SweepAccounting returns total setup wall (generation or thaw plus
// cluster assembly), total run wall (event-loop execution), and the
// number of runs since the last reset.
func SweepAccounting() (setup, run time.Duration, runs int) {
	account.mu.Lock()
	defer account.mu.Unlock()
	return account.setup, account.run, account.runs
}

// sweepWorkers overrides the sweep pool size when positive; zero falls
// back to GOMAXPROCS. Atomic so tests and the CLI may set it without
// racing an in-flight sweep.
var sweepWorkers atomic.Int32

// SetSweepWorkers bounds the sweep worker pool. n <= 0 restores the
// default (GOMAXPROCS).
func SetSweepWorkers(n int) { sweepWorkers.Store(int32(n)) }

// sweepShards, when > 1, asks RunOne to execute every compatible run on
// the sharded (conservative parallel) engine with that many shards.
var sweepShards atomic.Int32

// SetShards sets the per-run shard count applied by RunOne (mdsim
// -shards). n <= 1 restores serial execution.
func SetShards(n int) { sweepShards.Store(int32(n)) }

// Shards returns the requested per-run shard count (0 or 1 = serial).
func Shards() int { return int(sweepShards.Load()) }

// clampLogOnce gates the oversubscription warning to one line per
// process, however many sweeps run.
var clampLogOnce sync.Once

// SweepWorkers returns the current sweep pool size. When sharded runs
// are active each run occupies Shards() cores, so the pool is capped at
// workers × shards <= GOMAXPROCS — the shard count wins and the worker
// pool shrinks (to a floor of one worker), logged once.
func SweepWorkers() int {
	w := int(sweepWorkers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if k := Shards(); k > 1 {
		budget := runtime.GOMAXPROCS(0) / k
		if budget < 1 {
			budget = 1
		}
		if w > budget {
			clampLogOnce.Do(func() {
				fmt.Fprintf(os.Stderr,
					"harness: clamping sweep workers %d -> %d so workers x %d shards fit %d cores\n",
					w, budget, k, runtime.GOMAXPROCS(0))
			})
			w = budget
		}
	}
	return w
}

// Sweep runs all specs on a worker pool of SweepWorkers goroutines
// (GOMAXPROCS unless overridden via SetSweepWorkers / mdsim -workers)
// and returns results in spec order. The semaphore is acquired before
// each goroutine is spawned, so at most SweepWorkers workers exist at a
// time (rather than one goroutine per spec all blocking on the
// semaphore). All failures are reported, joined in spec order.
func Sweep(specs []RunSpec) ([]*cluster.Result, error) {
	results := make([]*cluster.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, SweepWorkers())
	for i, spec := range specs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, spec RunSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = RunOne(spec)
		}(i, spec)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// Options tunes experiment scale so the same definitions serve quick CI
// runs and full paper-scale regenerations.
type Options struct {
	// Scale multiplies durations and divides sweep density; 1.0 = the
	// full experiment, smaller = quicker.
	Quick bool
	Seed  int64
	// NetModel selects the message-fabric latency model for every run
	// ("" = fixed; see internal/net).
	NetModel string
}

// Experiment is one regenerable figure.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(w io.Writer, opt Options) error
}

// All returns every experiment in figure order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "fig2",
			Title: "Figure 2: MDS performance vs cluster size",
			Description: "Average per-MDS throughput as file system, cluster size and " +
				"client base scale together, for all five strategies.",
			Run: Fig2,
		},
		{
			ID:    "fig3",
			Title: "Figure 3: cache consumed by prefix inodes",
			Description: "Percentage of MDS cache devoted to prefix directory inodes " +
				"as the system scales, per strategy.",
			Run: Fig3,
		},
		{
			ID:    "fig4",
			Title: "Figure 4: cache hit rate vs cache size",
			Description: "Hit rate as a function of cache size relative to total " +
				"metadata size, per strategy.",
			Run: Fig4,
		},
		{
			ID:    "fig5",
			Title: "Figure 5: throughput under a workload shift",
			Description: "Min/avg/max per-MDS throughput over time as half the " +
				"clients migrate and create files in one subtree: dynamic vs static.",
			Run: Fig5,
		},
		{
			ID:    "fig6",
			Title: "Figure 6: forwarded requests under a workload shift",
			Description: "Fraction of client requests forwarded over time for the " +
				"same shifted workload: dynamic vs static.",
			Run: Fig6,
		},
		{
			ID:    "fig7",
			Title: "Figure 7: flash crowd traffic control",
			Description: "Cluster replies and forwards per second while thousands of " +
				"clients hit one file: traffic control off vs on.",
			Run: Fig7,
		},
	}
}

// ByID finds an experiment among the figures and the extras.
func ByID(id string) (Experiment, bool) {
	for _, e := range append(All(), Extras()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

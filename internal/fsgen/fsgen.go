// Package fsgen generates synthetic file-system snapshots for the
// simulator. The paper ran its simulations against snapshots of actual
// file systems — "a large collection of home directories" — which are not
// available; this generator produces a namespace with the same shape:
// many user home directories with nested project directories, log-normal
// files-per-directory counts, a system tree, and a set of shared
// scientific project directories. Generation is deterministic for a
// given Config (including Seed).
package fsgen

import (
	"fmt"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// Config parameterises snapshot generation.
type Config struct {
	Seed int64

	// Users is the number of home directories under /home.
	Users int
	// DirsPerUser is the number of nested directories created inside
	// each home directory (in addition to the home itself).
	DirsPerUser int
	// MaxDepth bounds directory nesting below a home directory.
	MaxDepth int
	// FilesPerDirMedian/Sigma parameterise the log-normal distribution
	// of files per directory. Trace studies consistently find a long
	// tail: most directories are small, a few are very large.
	FilesPerDirMedian float64
	FilesPerDirSigma  float64
	// FilesPerDirMax caps pathological draws.
	FilesPerDirMax int

	// SystemDirs and SystemFilesPerDir shape the /usr-like system tree
	// that every client occasionally touches (shared, read-mostly).
	SystemDirs        int
	SystemFilesPerDir int

	// Projects is the number of shared directories under /proj used by
	// the scientific workload (all clients in a job touch one project).
	Projects        int
	FilesPerProject int
}

// Default returns a small but realistically shaped configuration.
func Default() Config {
	return Config{
		Seed:              1,
		Users:             100,
		DirsPerUser:       20,
		MaxDepth:          6,
		FilesPerDirMedian: 6,
		FilesPerDirSigma:  1.2,
		FilesPerDirMax:    500,
		SystemDirs:        50,
		SystemFilesPerDir: 20,
		Projects:          10,
		FilesPerProject:   100,
	}
}

// Scale returns a copy of c with user/project counts multiplied by f,
// used by experiments that grow the file system with the cluster.
func (c Config) Scale(f float64) Config {
	s := c
	s.Users = max(1, int(float64(c.Users)*f))
	s.Projects = max(1, int(float64(c.Projects)*f))
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Snapshot is a generated namespace plus the index lists workload
// generators draw from.
type Snapshot struct {
	Tree *namespace.Tree
	// Homes[i] is user i's home directory.
	Homes []*namespace.Inode
	// Projects[i] is shared project directory i.
	Projects []*namespace.Inode
	// System is the root of the shared system tree.
	System *namespace.Inode
	// Names interns entry names: generated trees repeat a small set
	// ("f0000" exists under every user), so sharing one string per
	// distinct name removes the bulk of generation-time allocation.
	// Workload generators reuse it for the names they synthesise.
	Names *namespace.Interner
}

// namer formats the generator's numbered names ("u0042", "lib003.so")
// into a scratch buffer and interns the result — no fmt, and at most
// one retained allocation per distinct name.
type namer struct {
	in  *namespace.Interner
	buf []byte
}

func (nm *namer) name(prefix string, n, width int, suffix string) string {
	b := append(nm.buf[:0], prefix...)
	b = appendPadded(b, n, width)
	b = append(b, suffix...)
	nm.buf = b
	return nm.in.InternBytes(b)
}

// appendPadded appends n in decimal, zero-padded to width (wider
// numbers keep all their digits, matching fmt's %0*d).
func appendPadded(b []byte, n, width int) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	for len(tmp)-i < width {
		i--
		tmp[i] = '0'
	}
	return append(b, tmp[i:]...)
}

// Generate builds a snapshot from the configuration.
func Generate(cfg Config) (*Snapshot, error) {
	if cfg.Users < 1 {
		return nil, fmt.Errorf("fsgen: Users must be >= 1, got %d", cfg.Users)
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.FilesPerDirMax < 1 {
		cfg.FilesPerDirMax = 1
	}
	r := sim.NewStream(cfg.Seed, "fsgen")
	t := namespace.NewTree()
	nm := &namer{in: namespace.NewInterner()}
	snap := &Snapshot{Tree: t, Names: nm.in}

	home, err := t.Mkdir(t.Root, "home")
	if err != nil {
		return nil, err
	}
	for u := 0; u < cfg.Users; u++ {
		h, err := t.Mkdir(home, nm.name("u", u, 4, ""))
		if err != nil {
			return nil, err
		}
		snap.Homes = append(snap.Homes, h)
		if err := growUserTree(t, r, h, cfg, nm); err != nil {
			return nil, err
		}
	}

	if cfg.SystemDirs > 0 {
		sys, err := t.Mkdir(t.Root, "usr")
		if err != nil {
			return nil, err
		}
		snap.System = sys
		dirs := []*namespace.Inode{sys}
		for d := 0; d < cfg.SystemDirs; d++ {
			parent := dirs[r.Pick(len(dirs))]
			if parent.Depth() >= cfg.MaxDepth {
				parent = sys
			}
			nd, err := t.Mkdir(parent, nm.name("s", d, 3, ""))
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, nd)
		}
		for _, d := range dirs {
			for f := 0; f < cfg.SystemFilesPerDir; f++ {
				if _, err := t.Create(d, nm.name("lib", f, 3, ".so")); err != nil {
					return nil, err
				}
			}
		}
	}

	if cfg.Projects > 0 {
		proj, err := t.Mkdir(t.Root, "proj")
		if err != nil {
			return nil, err
		}
		for p := 0; p < cfg.Projects; p++ {
			pd, err := t.Mkdir(proj, nm.name("p", p, 3, ""))
			if err != nil {
				return nil, err
			}
			snap.Projects = append(snap.Projects, pd)
			for f := 0; f < cfg.FilesPerProject; f++ {
				if _, err := t.Create(pd, nm.name("data", f, 5, "")); err != nil {
					return nil, err
				}
			}
		}
	}
	return snap, nil
}

// growUserTree creates the nested directory structure and files beneath
// one home directory.
func growUserTree(t *namespace.Tree, r *sim.RNG, h *namespace.Inode, cfg Config, nm *namer) error {
	dirs := []*namespace.Inode{h}
	baseDepth := h.Depth()
	for d := 0; d < cfg.DirsPerUser; d++ {
		parent := dirs[r.Pick(len(dirs))]
		if parent.Depth()-baseDepth >= cfg.MaxDepth {
			parent = h
		}
		nd, err := t.Mkdir(parent, nm.name("d", d, 3, ""))
		if err != nil {
			return err
		}
		dirs = append(dirs, nd)
	}
	for _, d := range dirs {
		nf := r.LogNormalInt(cfg.FilesPerDirMedian, cfg.FilesPerDirSigma, 0, cfg.FilesPerDirMax)
		for f := 0; f < nf; f++ {
			if _, err := t.Create(d, nm.name("f", f, 4, "")); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats summarises a generated tree.
type Stats struct {
	Inodes, Files, Dirs int
	MaxDepth            int
	MeanDepth           float64
	MeanDirSize         float64 // children per directory (non-empty dirs)
}

// Describe computes summary statistics for a tree.
func Describe(t *namespace.Tree) Stats {
	var s Stats
	var depthSum, dirWithKids, kidSum int
	t.Walk(func(n *namespace.Inode) bool {
		s.Inodes++
		d := n.Depth()
		depthSum += d
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
		if n.IsDir() {
			s.Dirs++
			if n.NumChildren() > 0 {
				dirWithKids++
				kidSum += n.NumChildren()
			}
		} else {
			s.Files++
		}
		return true
	})
	if s.Inodes > 0 {
		s.MeanDepth = float64(depthSum) / float64(s.Inodes)
	}
	if dirWithKids > 0 {
		s.MeanDirSize = float64(kidSum) / float64(dirWithKids)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("inodes=%d files=%d dirs=%d maxdepth=%d meandepth=%.2f meandirsize=%.2f",
		s.Inodes, s.Files, s.Dirs, s.MaxDepth, s.MeanDepth, s.MeanDirSize)
}

// Package harness defines the experiments that regenerate every figure
// in the paper's evaluation (§5), and a parallel sweep runner that
// executes independent simulation configurations across CPU cores. Each
// simulation itself is single-threaded and deterministic; the sweep's
// parallelism never changes results, only wall-clock time.
package harness

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"dynmds/internal/cluster"
)

// RunSpec names one simulation configuration.
type RunSpec struct {
	Label string
	Cfg   cluster.Config
}

// RunOne builds and runs a single configuration.
func RunOne(spec RunSpec) (*cluster.Result, error) {
	cl, err := cluster.New(spec.Cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", spec.Label, err)
	}
	return cl.Run(), nil
}

// Sweep runs all specs on a worker pool of GOMAXPROCS goroutines and
// returns results in spec order. The semaphore is acquired before each
// goroutine is spawned, so at most GOMAXPROCS workers exist at a time
// (rather than one goroutine per spec all blocking on the semaphore).
// All failures are reported, joined in spec order.
func Sweep(specs []RunSpec) ([]*cluster.Result, error) {
	results := make([]*cluster.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, spec := range specs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, spec RunSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = RunOne(spec)
		}(i, spec)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// Options tunes experiment scale so the same definitions serve quick CI
// runs and full paper-scale regenerations.
type Options struct {
	// Scale multiplies durations and divides sweep density; 1.0 = the
	// full experiment, smaller = quicker.
	Quick bool
	Seed  int64
}

// Experiment is one regenerable figure.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(w io.Writer, opt Options) error
}

// All returns every experiment in figure order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "fig2",
			Title: "Figure 2: MDS performance vs cluster size",
			Description: "Average per-MDS throughput as file system, cluster size and " +
				"client base scale together, for all five strategies.",
			Run: Fig2,
		},
		{
			ID:    "fig3",
			Title: "Figure 3: cache consumed by prefix inodes",
			Description: "Percentage of MDS cache devoted to prefix directory inodes " +
				"as the system scales, per strategy.",
			Run: Fig3,
		},
		{
			ID:    "fig4",
			Title: "Figure 4: cache hit rate vs cache size",
			Description: "Hit rate as a function of cache size relative to total " +
				"metadata size, per strategy.",
			Run: Fig4,
		},
		{
			ID:    "fig5",
			Title: "Figure 5: throughput under a workload shift",
			Description: "Min/avg/max per-MDS throughput over time as half the " +
				"clients migrate and create files in one subtree: dynamic vs static.",
			Run: Fig5,
		},
		{
			ID:    "fig6",
			Title: "Figure 6: forwarded requests under a workload shift",
			Description: "Fraction of client requests forwarded over time for the " +
				"same shifted workload: dynamic vs static.",
			Run: Fig6,
		},
		{
			ID:    "fig7",
			Title: "Figure 7: flash crowd traffic control",
			Description: "Cluster replies and forwards per second while thousands of " +
				"clients hit one file: traffic control off vs on.",
			Run: Fig7,
		},
	}
}

// ByID finds an experiment among the figures and the extras.
func ByID(id string) (Experiment, bool) {
	for _, e := range append(All(), Extras()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

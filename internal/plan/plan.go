// Package plan is the declarative scenario engine: an experiment is a
// Plan — namespace spec, cluster knobs, traffic spec, a parameter
// matrix, and a timeline of acts — validated upfront like a fault
// schedule and compiled into the cluster.Config sweep the harness
// already knows how to run. Plans round-trip through a small
// line-oriented text DSL (see Parse/String), so a scenario is one
// readable file rather than a hand-coded Go function.
//
// A plan's lifecycle is Parse (or Go literal) → Validate → Compile →
// harness sweep. Everything that can be rejected before simulation is:
// unknown act kinds, overlapping act windows, non-positive rates,
// unknown matrix keys or metrics. The one namespace-dependent check —
// an act's hotspot path resolving to a real inode — happens in
// cluster.New, still before any event runs.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"dynmds/internal/client"
	"dynmds/internal/cluster"
	"dynmds/internal/mds"
	"dynmds/internal/net"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// Act kinds.
const (
	// ActPhase retargets the traffic plane's rate/mix/skew for a window.
	ActPhase = "phase"
	// ActHotspot is a phase that additionally concentrates a fraction of
	// target draws on one namespace path.
	ActHotspot = "hotspot"
)

// Metrics a plan may declare under "optimize" (report emphasis; the
// executor always records the full set).
var knownMetrics = map[string]bool{
	"ops": true, "p50": true, "p99": true, "p999": true,
	"load-spread": true, "hit": true, "fwd": true, "hot": true,
}

// Matrix keys the compiler applies itself; anything else needs a Tweak.
var knownAxes = map[string]bool{
	"strategy": true, "mds": true, "clients": true, "rate": true,
	"cache": true, "tenants": true, "tenant-skew": true, "file-skew": true,
	"shards": true, "mechanism": true,
}

// Plan is one declarative scenario.
type Plan struct {
	// Name identifies the plan (library key, -plan argument, report
	// label prefix). Lowercase letters, digits and dashes.
	Name string
	// Describe is the one-line human description.
	Describe string
	// Quick scales simulated times and client counts when compiled with
	// Options.Quick; 0 means the default 0.5.
	Quick float64

	FS      FSSpec
	Cluster ClusterSpec
	// Traffic, when non-nil, drives the run through the open-loop
	// traffic plane. Required for plans with acts.
	Traffic *TrafficSpec

	// Matrix is the parameter sweep: the cartesian product of the axes,
	// first axis outermost. Each cell compiles to one run.
	Matrix []Axis

	Warmup   sim.Time
	Duration sim.Time

	// Acts is the scenario timeline: ordered, non-overlapping windows
	// within [0, Duration].
	Acts []Act

	// Optimize names the metrics the plan is about; the report leads
	// with them. Subset of ops/p50/p99/p999/load-spread/hit/fwd/hot.
	Optimize []string

	// Tweak, when non-nil, post-processes each compiled config (Go-only;
	// not serialized, and String marks the plan as code-backed). The
	// harness figure plans use it to reproduce their bespoke configs
	// bit-for-bit; it also unlocks matrix keys the compiler doesn't know.
	Tweak func(cfg *cluster.Config, cell Cell, opt Options)
}

// FSSpec sizes the generated namespace; zero fields keep fsgen defaults.
type FSSpec struct {
	Users    int
	Projects int
}

// ClusterSpec sets cluster-level knobs; zero fields keep cluster
// defaults.
type ClusterSpec struct {
	MDS      int
	Strategy string
	// Cache is the per-MDS cache capacity (inode records).
	Cache int
	// Shards > 1 selects the conservative parallel executor.
	Shards int
	// Net is the fabric latency model: "fixed" or "queued".
	Net string
	// Faults is a fault schedule in the internal/fault DSL.
	Faults string
	// Bucket is the metrics series bucket.
	Bucket sim.Time
}

// TrafficSpec configures the open-loop traffic plane.
type TrafficSpec struct {
	// Clients is the population size (scaled under quick).
	Clients int
	// Rate is the per-client mean arrival rate in ops/sec.
	Rate float64
	// Tenants, TenantSkew, FileSkew, WorkingSet shape the tenant model;
	// zeros keep workload defaults.
	Tenants    int
	TenantSkew float64
	FileSkew   float64
	WorkingSet int
	// Ways is the hint-table associativity.
	Ways int
	// Mix is the base op mix; nil keeps the population default.
	Mix *MixSpec
}

// MixSpec is an op-mix weighting in canonical draw order.
type MixSpec struct {
	Stat, Readdir, Chmod, Create, Rename, Unlink float64
}

func (m *MixSpec) sum() float64 {
	return m.Stat + m.Readdir + m.Chmod + m.Create + m.Rename + m.Unlink
}

// Axis is one matrix dimension: a known key and the values to sweep.
type Axis struct {
	Key    string
	Values []string
}

// Cell maps axis keys to the values chosen for one compiled run.
type Cell map[string]string

// Act is one timeline entry.
type Act struct {
	// Kind is ActPhase or ActHotspot.
	Kind string
	// Name labels the act in reports ("warm", "storm", ...).
	Name     string
	From, To sim.Time
	// RateMul scales the arrival rate for the window; 0 = unchanged.
	RateMul float64
	// Mix overrides the op mix for the window; nil = unchanged.
	Mix *MixSpec
	// Skew retargets the tenant popularity Zipf exponent at From (it
	// persists past To — see cluster.ActConfig). Negative = unchanged;
	// note the Go zero value 0 means "retarget to uniform", so
	// Go-authored acts that don't touch skew must set -1. Parse defaults
	// it correctly.
	Skew float64
	// Target and Frac are the hotspot path and the fraction of draws it
	// absorbs (hotspot acts only).
	Target string
	Frac   float64
}

// Options parameterises compilation (mirrors harness.Options).
type Options struct {
	Quick    bool
	Seed     int64
	NetModel string
}

// Compiled is one runnable cell of a plan.
type Compiled struct {
	// Label is "name" or "name/key=value/..." in axis order.
	Label string
	Cell  Cell
	Cfg   cluster.Config
}

// Validate checks everything that does not need a namespace. It is
// called by Compile; callers that only want the verdict (mdsim -plan
// validation, tests) can call it directly.
func (p *Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("plan has no name")
	}
	for _, r := range p.Name {
		if !(r == '-' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
			return fmt.Errorf("plan name %q: use lowercase letters, digits and dashes", p.Name)
		}
	}
	if p.Quick < 0 {
		return fmt.Errorf("plan %s: quick factor %s is negative", p.Name, fmtFloat(p.Quick))
	}
	if p.Cluster.Net != "" && p.Cluster.Net != net.ModelFixed && p.Cluster.Net != net.ModelQueued {
		return fmt.Errorf("plan %s: unknown net model %q (want %s or %s)", p.Name, p.Cluster.Net, net.ModelFixed, net.ModelQueued)
	}
	if p.Duration <= 0 && p.Tweak == nil {
		return fmt.Errorf("plan %s: no duration", p.Name)
	}
	if p.Warmup < 0 || (p.Duration > 0 && p.Warmup >= p.Duration) {
		return fmt.Errorf("plan %s: warmup %s does not fit the %s duration", p.Name, fmtTime(p.Warmup), fmtTime(p.Duration))
	}
	if p.Traffic != nil {
		t := p.Traffic
		if t.Clients <= 0 {
			return fmt.Errorf("plan %s: traffic needs a client count", p.Name)
		}
		if t.Rate <= 0 {
			return fmt.Errorf("plan %s: traffic rate must be > 0", p.Name)
		}
		if t.Mix != nil && t.Mix.sum() <= 0 {
			return fmt.Errorf("plan %s: traffic mix has no weight", p.Name)
		}
	}
	seen := map[string]bool{}
	for _, ax := range p.Matrix {
		if len(ax.Values) == 0 {
			return fmt.Errorf("plan %s: matrix axis %q has no values", p.Name, ax.Key)
		}
		if seen[ax.Key] {
			return fmt.Errorf("plan %s: matrix axis %q repeated", p.Name, ax.Key)
		}
		seen[ax.Key] = true
		if !knownAxes[ax.Key] {
			if p.Tweak == nil {
				return fmt.Errorf("plan %s: unknown matrix key %q (known: %s)", p.Name, ax.Key, strings.Join(sortedKeys(knownAxes), " "))
			}
			continue // the Tweak owns it
		}
		for _, v := range ax.Values {
			if err := checkAxisValue(ax.Key, v); err != nil {
				return fmt.Errorf("plan %s: matrix %s: %w", p.Name, ax.Key, err)
			}
		}
	}
	var prevTo sim.Time
	prevName := ""
	for i, a := range p.Acts {
		if p.Traffic == nil {
			return fmt.Errorf("plan %s: acts need a traffic section (the open-loop plane)", p.Name)
		}
		if a.Kind != ActPhase && a.Kind != ActHotspot {
			return fmt.Errorf("plan %s: unknown act kind %q (want %s or %s)", p.Name, a.Kind, ActPhase, ActHotspot)
		}
		if a.Name == "" {
			return fmt.Errorf("plan %s: act %d has no name", p.Name, i)
		}
		if a.From < 0 || a.To <= a.From {
			return fmt.Errorf("plan %s: act %q: window %s..%s does not move forward", p.Name, a.Name, fmtTime(a.From), fmtTime(a.To))
		}
		if p.Duration > 0 && a.To > p.Duration {
			return fmt.Errorf("plan %s: act %q ends at %s, past the %s duration", p.Name, a.Name, fmtTime(a.To), fmtTime(p.Duration))
		}
		if a.From < prevTo {
			return fmt.Errorf("plan %s: act %q (from %s) overlaps act %q (ends %s)", p.Name, a.Name, fmtTime(a.From), prevName, fmtTime(prevTo))
		}
		prevTo, prevName = a.To, a.Name
		if a.RateMul < 0 {
			return fmt.Errorf("plan %s: act %q: rate multiplier must be > 0", p.Name, a.Name)
		}
		if a.Mix != nil && a.Mix.sum() <= 0 {
			return fmt.Errorf("plan %s: act %q: mix has no weight", p.Name, a.Name)
		}
		switch a.Kind {
		case ActHotspot:
			if a.Target == "" {
				return fmt.Errorf("plan %s: act %q: hotspot without a target path", p.Name, a.Name)
			}
			if !strings.HasPrefix(a.Target, "/") {
				return fmt.Errorf("plan %s: act %q: hotspot target %q is not an absolute path", p.Name, a.Name, a.Target)
			}
			if a.Frac <= 0 || a.Frac > 1 {
				return fmt.Errorf("plan %s: act %q: hotspot fraction %s outside (0, 1]", p.Name, a.Name, fmtFloat(a.Frac))
			}
		case ActPhase:
			if a.Target != "" || a.Frac != 0 {
				return fmt.Errorf("plan %s: act %q: phase acts take no target/frac (use kind %s)", p.Name, a.Name, ActHotspot)
			}
		}
	}
	for _, m := range p.Optimize {
		if !knownMetrics[m] {
			return fmt.Errorf("plan %s: unknown metric %q (known: %s)", p.Name, m, strings.Join(sortedKeys(knownMetrics), " "))
		}
	}
	return nil
}

// Compile validates the plan and expands its matrix into runnable
// cluster configs, one per cell, in deterministic order.
func (p *Plan) Compile(opt Options) ([]Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	q := 1.0
	if opt.Quick {
		q = p.Quick
		if q <= 0 {
			q = 0.5
		}
	}
	cells := expandMatrix(p.Matrix)
	out := make([]Compiled, 0, len(cells))
	for _, cell := range cells {
		cfg, err := p.baseConfig(opt, q)
		if err != nil {
			return nil, err
		}
		label := p.Name
		for _, ax := range p.Matrix {
			v := cell[ax.Key]
			label += "/" + ax.Key + "=" + v
			if knownAxes[ax.Key] {
				if err := applyAxis(&cfg, ax.Key, v); err != nil {
					return nil, fmt.Errorf("plan %s: matrix %s: %w", p.Name, ax.Key, err)
				}
			}
		}
		if p.Tweak != nil {
			p.Tweak(&cfg, cell, opt)
		}
		out = append(out, Compiled{Label: label, Cell: cell, Cfg: cfg})
	}
	return out, nil
}

// baseConfig builds the cell-independent config: cluster defaults, the
// plan's FS/cluster/traffic sections, and the quick-scaled timeline.
func (p *Plan) baseConfig(opt Options, q float64) (cluster.Config, error) {
	cfg := cluster.Default()
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	if p.FS.Users > 0 {
		cfg.FS.Users = p.FS.Users
	}
	if p.FS.Projects > 0 {
		cfg.FS.Projects = p.FS.Projects
	}
	c := p.Cluster
	if c.MDS > 0 {
		cfg.NumMDS = c.MDS
	}
	if c.Strategy != "" {
		cfg.Strategy = c.Strategy
	}
	if c.Cache > 0 {
		cfg.MDS = mds.DefaultConfig(c.Cache)
	}
	if c.Shards != 0 {
		cfg.Shards = c.Shards
	}
	if c.Net != "" {
		cfg.NetModel = c.Net
	}
	if opt.NetModel != "" {
		cfg.NetModel = opt.NetModel
	}
	cfg.Faults = c.Faults
	if c.Bucket > 0 {
		cfg.SeriesBucket = c.Bucket
	}
	if p.Duration > 0 {
		cfg.Duration = scaleTime(p.Duration, q)
	}
	cfg.Warmup = scaleTime(p.Warmup, q)
	if t := p.Traffic; t != nil {
		pc := &client.PopulationConfig{
			Clients: scaleCount(t.Clients, q),
			Rate:    t.Rate,
			Ways:    t.Ways,
			Tenant: workload.TenantConfig{
				Tenants:    t.Tenants,
				TenantSkew: t.TenantSkew,
				FileSkew:   t.FileSkew,
				WorkingSet: t.WorkingSet,
			},
		}
		if t.Mix != nil {
			pc.MixStat, pc.MixReaddir, pc.MixChmod = t.Mix.Stat, t.Mix.Readdir, t.Mix.Chmod
			pc.MixCreate, pc.MixRename, pc.MixUnlink = t.Mix.Create, t.Mix.Rename, t.Mix.Unlink
		}
		cfg.OpenLoop = pc
	}
	for _, a := range p.Acts {
		ac := cluster.ActConfig{
			Name:     a.Name,
			From:     scaleTime(a.From, q),
			To:       scaleTime(a.To, q),
			RateMul:  a.RateMul,
			FileSkew: a.Skew,
			Hotspot:  a.Target,
			HotFrac:  a.Frac,
		}
		if a.Mix != nil {
			ac.MixStat, ac.MixReaddir, ac.MixChmod = a.Mix.Stat, a.Mix.Readdir, a.Mix.Chmod
			ac.MixCreate, ac.MixRename, ac.MixUnlink = a.Mix.Create, a.Mix.Rename, a.Mix.Unlink
		}
		cfg.Acts = append(cfg.Acts, ac)
	}
	return cfg, nil
}

// expandMatrix returns the cartesian product of the axes, first axis
// outermost; a plan without a matrix is one cell.
func expandMatrix(axes []Axis) []Cell {
	cells := []Cell{{}}
	for _, ax := range axes {
		next := make([]Cell, 0, len(cells)*len(ax.Values))
		for _, c := range cells {
			for _, v := range ax.Values {
				nc := Cell{}
				for k, cv := range c {
					nc[k] = cv
				}
				nc[ax.Key] = v
				next = append(next, nc)
			}
		}
		cells = next
	}
	return cells
}

// checkAxisValue parses a known axis value without a config, so a bad
// matrix fails at Validate, not mid-sweep.
func checkAxisValue(key, v string) error {
	var scratch cluster.Config
	scratch.OpenLoop = &client.PopulationConfig{}
	return applyAxis(&scratch, key, v)
}

// applyAxis applies one known matrix binding to a config.
func applyAxis(cfg *cluster.Config, key, v string) error {
	switch key {
	case "strategy":
		for _, s := range cluster.Strategies {
			if v == s {
				cfg.Strategy = v
				return nil
			}
		}
		return fmt.Errorf("unknown strategy %q", v)
	case "mds":
		n, err := parseInt(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad MDS count %q", v)
		}
		cfg.NumMDS = n
	case "clients":
		n, err := parseInt(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad client count %q", v)
		}
		if cfg.OpenLoop != nil {
			cfg.OpenLoop.Clients = n
		} else if cfg.NumMDS > 0 {
			cfg.ClientsPerMDS = n / cfg.NumMDS
		}
	case "rate":
		f, err := parseFloat(v)
		if err != nil || f <= 0 {
			return fmt.Errorf("bad rate %q", v)
		}
		if cfg.OpenLoop == nil {
			return fmt.Errorf("rate axis needs a traffic section")
		}
		cfg.OpenLoop.Rate = f
	case "cache":
		n, err := parseInt(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad cache size %q", v)
		}
		cfg.MDS = mds.DefaultConfig(n)
	case "tenants":
		n, err := parseInt(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad tenant count %q", v)
		}
		if cfg.OpenLoop == nil {
			return fmt.Errorf("tenants axis needs a traffic section")
		}
		cfg.OpenLoop.Tenant.Tenants = n
	case "tenant-skew":
		f, err := parseFloat(v)
		if err != nil || f < 0 {
			return fmt.Errorf("bad tenant skew %q", v)
		}
		if cfg.OpenLoop == nil {
			return fmt.Errorf("tenant-skew axis needs a traffic section")
		}
		cfg.OpenLoop.Tenant.TenantSkew = f
	case "file-skew":
		f, err := parseFloat(v)
		if err != nil || f < 0 {
			return fmt.Errorf("bad file skew %q", v)
		}
		if cfg.OpenLoop == nil {
			return fmt.Errorf("file-skew axis needs a traffic section")
		}
		cfg.OpenLoop.Tenant.FileSkew = f
	case "shards":
		n, err := parseInt(v)
		if err != nil || n < 0 {
			return fmt.Errorf("bad shard count %q", v)
		}
		cfg.Shards = n
	case "mechanism":
		// Client-coherence mechanism under test: the lease plane and the
		// hot-directory replica fan-out, separately and together.
		cfg.Lease.Enabled, cfg.Lease.Fanout = false, false
		switch v {
		case "dumb":
		case "leases":
			cfg.Lease.Enabled = true
		case "fanout":
			cfg.Lease.Fanout = true
		case "both":
			cfg.Lease.Enabled, cfg.Lease.Fanout = true, true
		default:
			return fmt.Errorf("unknown mechanism %q (want dumb, leases, fanout or both)", v)
		}
	default:
		return fmt.Errorf("unknown matrix key %q", key)
	}
	return nil
}

// scaleTime scales a virtual time by the quick factor, snapping to the
// millisecond grid so act boundaries stay aligned with the timer wheel.
func scaleTime(t sim.Time, q float64) sim.Time {
	if q == 1 {
		return t
	}
	s := sim.Time(float64(t) * q)
	if s > sim.Millisecond {
		s -= s % sim.Millisecond
	}
	return s
}

// scaleCount scales a population size, keeping at least one client.
func scaleCount(n int, q float64) int {
	if q == 1 {
		return n
	}
	s := int(float64(n) * q)
	if s < 1 {
		s = 1
	}
	return s
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package cluster

import (
	"fmt"
	"strings"

	"dynmds/internal/net"
	"dynmds/internal/sim"
)

// Fault-mode defaults, applied to zero-valued resilience knobs when a
// non-empty fault schedule is configured. Without retry and timeout
// paths an injected crash or message drop would hang clients forever;
// with them every fault is survivable out of the box.
const (
	defaultRetryTimeout = 150 * sim.Millisecond
	defaultMaxRetries   = 8
	// The fetch timeout must dwarf a loaded peer's disk queue (the
	// response rides behind its read disk), or cold caches trigger
	// storms of duplicate reads; it is a lost-message backstop, not a
	// failure detector.
	defaultFetchTimeout = 400 * sim.Millisecond
	// The forward ack is sent before CPU/disk service, so its deadline
	// only needs to cover two network hops plus scheduling noise.
	defaultFwdTimeout         = 20 * sim.Millisecond
	defaultSuspicionThreshold = 3
)

// applyFaultDefaults fills zero-valued timeout knobs; explicit settings
// are never overridden.
func applyFaultDefaults(cfg *Config) {
	if cfg.Client.RetryTimeout <= 0 {
		cfg.Client.RetryTimeout = defaultRetryTimeout
	}
	if cfg.Client.MaxRetries <= 0 {
		cfg.Client.MaxRetries = defaultMaxRetries
	}
	if cfg.MDS.FetchTimeout <= 0 {
		cfg.MDS.FetchTimeout = defaultFetchTimeout
	}
	if cfg.MDS.FwdTimeout <= 0 {
		cfg.MDS.FwdTimeout = defaultFwdTimeout
	}
	if cfg.SuspicionThreshold <= 0 {
		cfg.SuspicionThreshold = defaultSuspicionThreshold
	}
}

// FaultEvent records one fault-injection incident on the simulated
// timeline.
type FaultEvent struct {
	At   sim.Time
	Node int
	// Warmed is the number of cache records preloaded from the bounded
	// log's working set (recovery events only).
	Warmed int
}

// scheduleFaults posts the parsed schedule's node events onto the
// engine. Crashes only mark the node dead — detection and subtree
// reassignment happen through the suspicion protocol, not by fiat —
// while recoveries go through RecoverNode so the warmed-count and the
// down/strike state are handled in one place. Drop, lag and partition
// rules need no events: the fault plane evaluates them per message.
func (c *Cluster) scheduleFaults() {
	if c.sched == nil {
		return
	}
	for _, ev := range c.sched.Crashes {
		ev := ev
		c.Eng.At(ev.At, func() {
			c.Nodes[ev.Node].Fail()
			c.Failures = append(c.Failures, FaultEvent{At: ev.At, Node: ev.Node})
		})
	}
	for _, ev := range c.sched.Recovers {
		ev := ev
		c.Eng.At(ev.At, func() {
			c.RecoverNode(ev.Node) //nolint:errcheck // node index validated at parse
		})
	}
	for _, w := range c.sched.Slows {
		w := w
		c.Eng.At(w.From, func() { c.Nodes[w.Node].SetSlow(w.Factor) })
		c.Eng.At(w.To, func() { c.Nodes[w.Node].SetSlow(1) })
	}
}

// observeComplete feeds the per-second availability series (client
// OnComplete hook; attached only in fault mode).
func (c *Cluster) observeComplete(now sim.Time) {
	c.CompletedOps.Observe(now, 1)
}

// Suspect implements mds.FaultCluster: one missed-timeout strike
// against peer. At SuspicionThreshold strikes the peer is marked down:
// peers stop round-tripping to it (dead-letter forwards, direct disk
// reads for fetches) and the dynamic strategy reassigns its subtrees to
// the least-loaded survivors — the automatic failover of §2.1.2,
// triggered by detection rather than an operator call.
func (c *Cluster) Suspect(reporter, peer int) {
	if c.strikes == nil || peer < 0 || peer >= len(c.strikes) {
		return
	}
	c.suspicions++
	if c.down[peer] {
		return
	}
	c.strikes[peer]++
	if c.strikes[peer] >= c.Cfg.SuspicionThreshold {
		c.markDown(peer)
	}
}

// Exonerate implements mds.FaultCluster: a reply or ack from the peer
// proves it alive, clearing accumulated strikes. A node already marked
// down stays down until RecoverNode (suspicion is sticky; a stray late
// ack from a crashed node's final moments must not resurrect it).
func (c *Cluster) Exonerate(peer int) {
	if c.strikes == nil || peer < 0 || peer >= len(c.strikes) {
		return
	}
	if !c.down[peer] {
		c.strikes[peer] = 0
	}
}

// NodeDown implements mds.FaultCluster.
func (c *Cluster) NodeDown(peer int) bool {
	return c.down != nil && peer >= 0 && peer < len(c.down) && c.down[peer]
}

// markDown confirms a suspect dead and fails its workload over.
func (c *Cluster) markDown(peer int) {
	if c.down[peer] {
		return
	}
	c.down[peer] = true
	c.Downs = append(c.Downs, FaultEvent{At: c.Eng.Now(), Node: peer})
	if c.Dyn != nil {
		c.reassignRoots(peer) //nolint:errcheck // delegation over a live table
	}
}

// Drain stops every client and runs the engine two simulated seconds
// past the configured duration, so every bounded message chain
// completes or times out (the longest — a retried, forwarded request
// with a disk fetch — is well under a second) and only the perpetual
// tickers (flushers, balancer) remain. Conservation checks and the
// chaos consistency checker (internal/chaos) are only meaningful on a
// drained cluster; call after Run.
func (c *Cluster) Drain() {
	for _, cl := range c.Clients {
		cl.Stop()
	}
	if c.Pop != nil {
		c.Pop.Stop()
	}
	if c.group != nil {
		c.group.Run(c.Cfg.Duration + 2*sim.Second)
		return
	}
	c.Eng.RunUntil(c.Cfg.Duration + 2*sim.Second)
}

// FaultSummary renders the human-readable fault block for a finished
// run: the resilience counters, per-class drop counts, and the injected
// crash / confirmed-down / recovery timeline. Empty string on
// fault-free runs. mdsim prints this after a custom -faults run.
func (r *Result) FaultSummary() string {
	if r.FaultSchedule == "" {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "faults (%s): %d retries, %d timed out, %d fetch timeouts, %d fwd timeouts, %d dead letters, %d suspicions\n",
		r.FaultSchedule, r.Retries, r.TimedOut, r.FetchTimeouts,
		r.FwdTimeouts, r.DeadLetters, r.Suspicions)
	if r.Net.Dropped > 0 {
		b.WriteString("  dropped by class:")
		for c := 0; c < net.NumClasses; c++ {
			if d := r.Net.PerClass[c].Dropped; d > 0 {
				fmt.Fprintf(&b, " %s=%d", net.Class(c), d)
			}
		}
		b.WriteByte('\n')
	}
	for _, ev := range r.Failures {
		fmt.Fprintf(&b, "  crash   t=%.3fs mds%d\n", ev.At.Seconds(), ev.Node)
	}
	for _, ev := range r.Downs {
		fmt.Fprintf(&b, "  down    t=%.3fs mds%d (suspicion confirmed)\n", ev.At.Seconds(), ev.Node)
	}
	for _, ev := range r.Recoveries {
		fmt.Fprintf(&b, "  recover t=%.3fs mds%d (%d records warmed)\n", ev.At.Seconds(), ev.Node, ev.Warmed)
	}
	return b.String()
}

// DrainCheck verifies that after a drain (clients stopped, engine run
// past the last timeout) no operation is orphaned: every issued request
// either completed or was accounted as timed out, and no client still
// holds an in-flight request. It returns the first violation found.
func (c *Cluster) DrainCheck() error {
	if c.Pop != nil {
		if n := c.Pop.RetryOutstanding(); n > 0 {
			return fmt.Errorf("cluster: population holds %d boxed requests after drain", n)
		}
		issued, completed, timedOut := c.Pop.Issued(), c.Pop.Completed(), c.Pop.TimedOut()
		if issued != completed+timedOut {
			return fmt.Errorf("cluster: orphaned population ops: issued=%d != completed=%d + timedout=%d",
				issued, completed, timedOut)
		}
	}
	for _, cl := range c.Clients {
		s := cl.Stats
		if cl.Inflight() {
			return fmt.Errorf("cluster: client has an unaccounted in-flight request (issued=%d completed=%d timedout=%d)",
				s.Issued, s.Completed, s.TimedOut)
		}
		if s.Issued != s.Completed+s.TimedOut {
			return fmt.Errorf("cluster: orphaned ops: issued=%d != completed=%d + timedout=%d",
				s.Issued, s.Completed, s.TimedOut)
		}
	}
	return nil
}

// Package client models the client population. Two planes exist:
//
//   - Client is the closed-loop per-object model: issue one metadata
//     operation, wait for the reply, think, repeat. The interesting
//     behaviour is request direction (§4.4): for hash-based strategies
//     clients compute the authority directly; for subtree strategies
//     they are initially ignorant and direct each request by the
//     deepest known prefix of the target's path, learning the
//     partition from the distribution hints carried on replies.
//
//   - Population is the open-loop flyweight plane for millions of
//     clients: dense per-client records in slab arrays, arrivals
//     scheduled through a hierarchical timer wheel, tenants with
//     Zipf-distributed sizes (see population.go).
//
// Both planes share the HintTable location cache (hints.go).
package client

import (
	"dynmds/internal/metrics"
	"dynmds/internal/msg"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// Network is the client's access to the cluster.
type Network interface {
	// Send delivers a request to MDS node i after client→MDS latency.
	Send(i int, req *msg.Request)
	// NumMDS returns the cluster size.
	NumMDS() int
}

// Config parameterises a client.
type Config struct {
	// ThinkMean is the mean think time between a reply and the next
	// request (exponentially distributed). Zero = saturating client.
	ThinkMean sim.Time
	// KnownCap bounds the location-knowledge cache (per-client ways in
	// the shared hint table, rounded up to a power of two).
	KnownCap int
	// RetryTimeout, when positive, re-sends a request that has not
	// been answered within the timeout. Retries resteer: the stale
	// location hint for the target is invalidated and the resend avoids
	// the node tried last, since that node may be down. Needed for
	// failover and fault-injection scenarios; zero disables retries.
	RetryTimeout sim.Time
	// RetryBackoffMax caps the exponential backoff between retries
	// (timeout doubles per attempt). Zero means 8× RetryTimeout.
	RetryBackoffMax sim.Time
	// MaxRetries bounds the resend attempts per request; once exhausted
	// the request is abandoned and counted as timed out, and the client
	// moves on to its next operation. Zero means retry forever.
	MaxRetries int
}

// Stats counts one client's activity.
type Stats struct {
	Issued    uint64
	Completed uint64
	Retries   uint64
	// TimedOut counts requests abandoned after MaxRetries unanswered
	// sends (or cut off by Stop while still unanswered). Every issued
	// request ends up either Completed or TimedOut once the run drains.
	TimedOut uint64
	Latency  metrics.Welford
}

// Client is one simulated client.
type Client struct {
	id    int
	eng   *sim.Engine
	cfg   Config
	rng   *sim.RNG
	net   Network
	strat partition.Strategy
	gen   workload.Generator

	// hints is the location-knowledge cache; by default a private
	// single-client table, replaced by the cluster's population-wide
	// slab via ShareHints. hintID is this client's region index.
	hints  *HintTable
	hintID int

	nextID   uint64
	stopped  bool
	inflight *msg.Request
	attempts int // resends of the current in-flight request
	lastMDS  int // node the in-flight request was last sent to
	// reqPool recycles completed requests. Replies are matched by
	// (client, id, gen) values rather than pointer identity, so reuse
	// is safe even in retry configurations: a recycled struct's next
	// incarnation carries a bumped Gen, and a late duplicate reply to
	// the old incarnation no longer matches. The one case that still
	// allocates is a request that was actually retransmitted — a stale
	// in-flight copy may reference the struct, so it is not recycled.
	reqPool *msg.Request

	// OnComplete, when set, observes each accepted completion (duplicate
	// replies excluded). The cluster uses it for the per-second
	// completed-op availability series.
	OnComplete func(now sim.Time)

	Stats Stats
}

// New creates a client driving the given workload generator.
func New(id int, eng *sim.Engine, cfg Config, rng *sim.RNG, net Network, strat partition.Strategy, gen workload.Generator) *Client {
	if cfg.KnownCap <= 0 {
		cfg.KnownCap = 1024
	}
	return &Client{
		id:    id,
		eng:   eng,
		cfg:   cfg,
		rng:   rng,
		net:   net,
		strat: strat,
		gen:   gen,
		hints: NewHintTable(1, cfg.KnownCap),
	}
}

// ShareHints points the client at a population-wide hint table (its
// region indexed by client id) instead of its private one. Call before
// Start.
func (c *Client) ShareHints(t *HintTable) { c.hints, c.hintID = t, c.id }

// SetGenerator replaces the client's workload generator. Call before
// Start (trace replay swaps generators in after cluster construction).
func (c *Client) SetGenerator(gen workload.Generator) { c.gen = gen }

// Start begins the closed loop, staggered by the given phase to avoid a
// synchronized thundering herd at t=0.
func (c *Client) Start(phase sim.Time) {
	c.eng.AfterCall(phase, clientIssue, c, nil)
}

// clientIssue is the recurring op-loop dispatcher: the client rides in
// the event payload, so the closed loop schedules without allocating.
func clientIssue(a, _ any) { a.(*Client).issue() }

// Stop ends the loop after the in-flight operation completes.
func (c *Client) Stop() { c.stopped = true }

// getRequest returns a recycled request (with its generation counter
// bumped) or a fresh one.
func (c *Client) getRequest() *msg.Request {
	if c.reqPool != nil {
		req := c.reqPool
		c.reqPool = nil
		gen := req.Gen + 1
		*req = msg.Request{}
		req.Gen = gen
		return req
	}
	return &msg.Request{}
}

func (c *Client) issue() {
	if c.stopped {
		return
	}
	op, ok := c.gen.Next(c.eng.Now(), c.rng)
	if !ok {
		// Generator exhausted or idle: retry after a think time.
		c.eng.AfterCall(c.rng.Exp(c.cfg.ThinkMean)+sim.Millisecond, clientIssue, c, nil)
		return
	}
	c.nextID++
	req := c.getRequest()
	req.ID = c.nextID
	req.Client = c.id
	req.Op = op.Op
	req.Target = op.Target
	req.DstDir = op.DstDir
	req.NewName = op.NewName
	req.Size = op.Size
	req.Issued = c.eng.Now()
	req.Via = -1
	mds := c.direct(req)
	req.FirstMDS = mds
	c.Stats.Issued++
	c.inflight = req
	c.attempts = 0
	c.lastMDS = mds
	c.net.Send(mds, req)
	c.armRetry(req)
}

// backoff returns the wait before the next retransmission: the base
// timeout doubled per attempt already made, capped at RetryBackoffMax.
func (c *Client) backoff() sim.Time {
	max := c.cfg.RetryBackoffMax
	if max <= 0 {
		max = 8 * c.cfg.RetryTimeout
	}
	shift := c.attempts
	if shift > 16 {
		shift = 16
	}
	d := c.cfg.RetryTimeout << uint(shift)
	if d > max || d <= 0 {
		d = max
	}
	return d
}

// armRetry schedules a retransmission for an unanswered request with
// capped exponential backoff. Each retry resteers: the (possibly stale)
// location hint for the target is dropped and the resend avoids the
// node tried last — the original target may have failed, and any node
// can forward to the current authority. After MaxRetries attempts the
// request is abandoned as timed out and the closed loop moves on.
func (c *Client) armRetry(req *msg.Request) {
	if c.cfg.RetryTimeout <= 0 {
		return
	}
	gen := req.Gen
	c.eng.After(c.backoff(), func() {
		if c.inflight != req || req.Gen != gen {
			// Answered (and possibly already recycled into a new
			// incarnation with a bumped Gen) — nothing to retry.
			return
		}
		if c.stopped {
			// The run is draining: account the unanswered request so
			// every issued op ends up completed or timed out.
			c.Stats.TimedOut++
			c.inflight = nil
			return
		}
		if c.cfg.MaxRetries > 0 && c.attempts >= c.cfg.MaxRetries {
			c.Stats.TimedOut++
			c.inflight = nil
			c.eng.AfterCall(c.rng.Exp(c.cfg.ThinkMean), clientIssue, c, nil)
			return
		}
		c.attempts++
		c.Stats.Retries++
		if req.Target != nil {
			c.hints.Del(c.hintID, req.Target.ID)
		}
		to := c.rng.Pick(c.net.NumMDS())
		if n := c.net.NumMDS(); n > 1 && to == c.lastMDS {
			to = (to + 1) % n
		}
		c.lastMDS = to
		c.net.Send(to, req)
		c.armRetry(req)
	})
}

// direct picks the MDS to contact (§4.4): computed directly for hashed
// strategies; otherwise the deepest known prefix's advertised location,
// falling back to a random node (the root is "known to all clients and
// consequently highly replicated").
func (c *Client) direct(req *msg.Request) int {
	if c.strat.ClientComputable() {
		if req.Op == msg.Create || req.Op == msg.Mkdir {
			return c.strat.AuthorityForName(req.Target, req.NewName)
		}
		return c.strat.Authority(req.Target)
	}
	for n := req.Target; n != nil; n = n.Parent() {
		if auth, repl, ok := c.hints.Get(c.hintID, n.ID); ok {
			if repl {
				return c.rng.Pick(c.net.NumMDS())
			}
			return auth
		}
	}
	return c.rng.Pick(c.net.NumMDS())
}

// OnReply completes the in-flight operation: absorb distribution hints,
// record latency, think, and issue the next request. Replies are
// matched by (client, id, gen) values — never pointer identity — so
// duplicates (a retried request answered twice, or a late answer to an
// abandoned request) are dropped even after the request struct itself
// has been recycled.
func (c *Client) OnReply(rep *msg.Reply) {
	req := c.inflight
	if req == nil || rep.Client != c.id || rep.ID != req.ID || rep.Gen != req.Gen {
		return
	}
	c.inflight = nil
	c.Stats.Completed++
	c.Stats.Latency.Add(rep.Latency().Seconds())
	if c.OnComplete != nil {
		c.OnComplete(c.eng.Now())
	}
	for _, h := range rep.Hints {
		c.hints.Put(c.hintID, h)
	}
	c.gen.Observe(rep)
	if c.attempts == 0 {
		// Exactly one copy of this request was ever sent and its one
		// delivery chain just completed, so no stale reference can
		// remain anywhere in the cluster: recycle. Retransmitted
		// requests (attempts > 0) may still have an in-flight copy
		// traversing the fabric and are left to the garbage collector.
		c.reqPool = req
	}
	if c.stopped {
		return
	}
	c.eng.AfterCall(c.rng.Exp(c.cfg.ThinkMean), clientIssue, c, nil)
}

// Inflight reports whether the client still holds an unanswered
// request (drain/invariant checks).
func (c *Client) Inflight() bool { return c.inflight != nil }

// KnownLocations reports the current size of the location cache.
func (c *Client) KnownLocations() int { return c.hints.Len(c.hintID) }

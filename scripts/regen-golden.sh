#!/usr/bin/env sh
# Regenerate the committed golden experiment outputs in testdata/:
#
#   scripts/regen-golden.sh          # quick golden only (~1 min)
#   scripts/regen-golden.sh -full    # also the full-scale goldens (~10 min)
#
# testdata/figures_quick.txt  every experiment at reduced scale (-quick)
# testdata/plans_quick.txt    the plan library at reduced scale (no wall
#                             lines: plan reports are fully deterministic)
# testdata/figures_full.txt   Figures 2-7 at paper scale
# testdata/extras_full.txt    the sci, failover, avail, and clients
#                             extensions at paper scale
#
# All runs use seed 1 and the default fixed network model; with those
# held, output is bit-identical across machines, so a diff against the
# committed files is a real behaviour change, not noise (the "(wall
# time ...)" lines are the one exception — real time varies run to run).
set -eu
cd "$(dirname "$0")/.."

go build ./cmd/mdsim

go run ./cmd/mdsim -fig all -quick > testdata/figures_quick.txt
echo "wrote testdata/figures_quick.txt"

go run ./cmd/mdsim -plan all -quick > testdata/plans_quick.txt
echo "wrote testdata/plans_quick.txt"

if [ "${1:-}" = "-full" ]; then
	: > testdata/figures_full.txt
	for f in 2 3 4 5 6 7; do
		go run ./cmd/mdsim -fig "$f" >> testdata/figures_full.txt
	done
	echo "wrote testdata/figures_full.txt"
	go run ./cmd/mdsim -fig sci > testdata/extras_full.txt
	go run ./cmd/mdsim -fig failover >> testdata/extras_full.txt
	go run ./cmd/mdsim -fig avail >> testdata/extras_full.txt
	go run ./cmd/mdsim -fig clients >> testdata/extras_full.txt
	echo "wrote testdata/extras_full.txt"
fi

package chaos

import (
	"reflect"
	"testing"

	"dynmds/internal/fault"
	"dynmds/internal/sim"
)

func genConfig(run int) GenConfig {
	return GenConfig{Seed: 7, Run: run, NumMDS: 4, Duration: 10 * sim.Second}
}

func TestGenerateDeterministic(t *testing.T) {
	for run := 0; run < 20; run++ {
		a, b := Generate(genConfig(run)), Generate(genConfig(run))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d: same config produced different schedules:\n%s\n%s", run, a, b)
		}
		if a.String() != b.String() {
			t.Fatalf("run %d: canonical text differs", run)
		}
	}
	// Different run indices must not all collapse to one schedule.
	distinct := map[string]bool{}
	for run := 0; run < 20; run++ {
		distinct[Generate(genConfig(run)).String()] = true
	}
	if len(distinct) < 10 {
		t.Errorf("20 runs produced only %d distinct schedules", len(distinct))
	}
}

// TestGenerateValid: every generated schedule validates, round-trips
// through the DSL, keeps all windows inside the run, and never crashes
// node 0 — the designated failover survivor.
func TestGenerateValid(t *testing.T) {
	for run := 0; run < 200; run++ {
		cfg := genConfig(run)
		cfg.Intensity = float64(run%4) + 0.5
		s := Generate(cfg)
		if err := s.Validate(cfg.NumMDS); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		back, err := fault.ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("run %d: generated schedule does not reparse: %v\n%s", run, err, s)
		}
		if back.NumRules() != s.NumRules() {
			t.Fatalf("run %d: reparse changed rule count %d -> %d", run, s.NumRules(), back.NumRules())
		}
		lo, hi := cfg.Duration/10, cfg.Duration*9/10
		checkWin := func(from, to sim.Time) {
			if from < lo || to > hi || from >= to {
				t.Fatalf("run %d: window [%v, %v) outside [%v, %v)", run, from, to, lo, hi)
			}
		}
		for _, e := range s.Crashes {
			if e.Node == 0 {
				t.Fatalf("run %d: schedule crashes node 0", run)
			}
			if e.At < lo || e.At >= hi {
				t.Fatalf("run %d: crash at %v outside the run body", run, e.At)
			}
		}
		for _, l := range s.Lags {
			checkWin(l.From, l.To)
		}
		for _, w := range s.Slows {
			checkWin(w.From, w.To)
		}
		for _, p := range s.Partitions {
			checkWin(p.From, p.To)
			if len(p.A) == 0 || len(p.B) == 0 {
				t.Fatalf("run %d: empty partition group", run)
			}
		}
		for _, d := range s.Drops {
			if d.P < 0 || d.P > 0.3 {
				t.Fatalf("run %d: drop probability %v out of bounds", run, d.P)
			}
		}
	}
}

// TestGenerateClassMaskStability: disabling one rule class must not
// reshuffle the rules of the remaining classes — the generator burns
// its draws either way. This keeps "re-run with only crashes enabled"
// a meaningful debugging step.
func TestGenerateClassMaskStability(t *testing.T) {
	for run := 0; run < 30; run++ {
		cfg := genConfig(run)
		full := Generate(cfg)
		cfg.Classes = ClassCrash
		only := Generate(cfg)
		if !reflect.DeepEqual(full.Crashes, only.Crashes) ||
			!reflect.DeepEqual(full.Recovers, only.Recovers) {
			t.Fatalf("run %d: masking other classes changed the crash rules\nfull: %s\nmask: %s",
				run, full, only)
		}
		if len(only.Drops)+len(only.Lags)+len(only.Slows)+len(only.Partitions) != 0 {
			t.Fatalf("run %d: masked classes still generated rules: %s", run, only)
		}
	}
}

// TestGenerateIntensityScales: a higher intensity draws more rules in
// aggregate.
func TestGenerateIntensityScales(t *testing.T) {
	total := func(intensity float64) int {
		sum := 0
		for run := 0; run < 60; run++ {
			cfg := genConfig(run)
			cfg.Intensity = intensity
			sum += Generate(cfg).NumRules()
		}
		return sum
	}
	low, high := total(0.4), total(3)
	if high <= low {
		t.Errorf("intensity 3 generated %d rules, intensity 0.4 generated %d", high, low)
	}
}

package cache

import (
	"fmt"
	"testing"

	"dynmds/internal/namespace"
)

func TestInsertDetached(t *testing.T) {
	tr := namespace.NewTree()
	d, _ := tr.Mkdir(tr.Root, "d")
	f, _ := tr.Create(d, "f")
	c := New(10)
	e := c.InsertDetached(f, Auth, false)
	if e == nil || !c.Contains(f.ID) {
		t.Fatal("detached insert failed")
	}
	// Parent is NOT cached and that's fine.
	if c.Contains(d.ID) {
		t.Fatal("parent unexpectedly cached")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-insert refreshes.
	if c.InsertDetached(f, Auth, false) != e {
		t.Fatal("re-insert created new entry")
	}
}

func TestDetachedDoesNotUnpinParent(t *testing.T) {
	tr := namespace.NewTree()
	d, _ := tr.Mkdir(tr.Root, "d")
	f, _ := tr.Create(d, "f")
	g, _ := tr.Create(d, "g")
	c := New(100)
	// g cached attached (pins d); f cached detached (does not pin d).
	if _, err := c.InsertPath(g, Auth, false); err != nil {
		t.Fatal(err)
	}
	c.InsertDetached(f, Auth, false)
	pe, _ := c.Peek(d.ID)
	if !pe.Pinned() {
		t.Fatal("d should be pinned by g")
	}
	// Dropping the detached entry must not unpin d.
	if err := c.Remove(f.ID); err != nil {
		t.Fatal(err)
	}
	if pe, _ := c.Peek(d.ID); !pe.Pinned() {
		t.Fatal("detached removal unpinned parent")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDetachedEvictsNormally(t *testing.T) {
	tr := namespace.NewTree()
	d, _ := tr.Mkdir(tr.Root, "d")
	c := New(3)
	var files []*namespace.Inode
	for i := 0; i < 6; i++ {
		f, _ := tr.Create(d, fmt.Sprintf("f%d", i))
		files = append(files, f)
		c.InsertDetached(f, Auth, false)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Contains(files[0].ID) || !c.Contains(files[5].ID) {
		t.Fatal("LRU order wrong for detached entries")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

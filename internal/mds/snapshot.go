package mds

import (
	"fmt"
	"sort"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
	"dynmds/internal/snap"
)

// Checkpoint codec. Called only at a quiesce point: no request is in
// the pipeline (CPU idle, no pending fetches, no outstanding forwards),
// so the node's state is its cache, store, counters, and the small
// bookkeeping maps. Orphans — inodes unlinked while open — cannot be
// serialized (a destroyed inode is not resolvable by ID on restore);
// the endurance workload issues no opens, so the quiesce check treats a
// non-empty orphan table as a hard error.

// statFields enumerates every Stats counter in a fixed serialization
// order; writer and reader share it so the codec cannot skew.
func (s *Stats) statFields() []*uint64 {
	return []*uint64{
		&s.Received, &s.ClientArrivals, &s.Served, &s.ReplicaServes,
		&s.Forwarded, &s.CacheMissLoads, &s.RemoteFetches,
		&s.PeerFetchServes, &s.ReplicaInstalls, &s.ReplicasPushed,
		&s.LHApplied, &s.Commits, &s.Imported, &s.Exported, &s.Dropped,
		&s.FetchTimeouts, &s.FwdTimeouts, &s.DeadLetters,
		&s.CoherenceSent, &s.CoherenceReceived, &s.EvictNoticesSent,
		&s.EvictNoticesRecvd, &s.OrphansRetained, &s.OrphansReaped,
		&s.WritesAbsorbed, &s.WriteFlushes, &s.SizeCallbacks,
		&s.LeaseGrants, &s.LeaseRecalls, &s.LeaseAcks, &s.ReplicaFanouts,
	}
}

// CheckQuiesced verifies the node holds no in-flight work: the pipeline
// maps are empty and the CPU is idle. The endurance plane calls it on
// every node after the drain window, before touching any state.
func (m *MDS) CheckQuiesced() error {
	if n := len(m.pending); n != 0 {
		return fmt.Errorf("mds %d: %d pending record fetches", m.id, n)
	}
	if n := len(m.pendingDir); n != 0 {
		return fmt.Errorf("mds %d: %d pending directory fetches", m.id, n)
	}
	if n := len(m.pendingFwd); n != 0 {
		return fmt.Errorf("mds %d: %d forwards awaiting ack", m.id, n)
	}
	if n := len(m.orphans); n != 0 {
		return fmt.Errorf("mds %d: %d orphaned inodes (opens in an endurance run?)", m.id, n)
	}
	return nil
}

// SnapshotTo serializes the node.
func (m *MDS) SnapshotTo(w *snap.Writer) {
	if err := m.CheckQuiesced(); err != nil {
		panic("mds: snapshot before quiesce: " + err.Error())
	}
	w.Bool(m.failed)
	w.F64(m.slow)
	w.U64(m.fwdSeq)
	for _, dc := range [...]interface {
		State() (float64, sim.Time)
	}{m.opsRate, m.missRate} {
		v, last := dc.State()
		w.F64(v)
		w.I64(int64(last))
	}
	completed, submitted, busy, last := m.cpu.StatsState()
	w.U64(completed)
	w.U64(submitted)
	w.I64(int64(busy))
	w.I64(int64(last))
	for _, f := range m.Stats.statFields() {
		w.U64(*f)
	}
	openIDs := make([]namespace.InodeID, 0, len(m.opens))
	for id := range m.opens {
		openIDs = append(openIDs, id)
	}
	sort.Slice(openIDs, func(i, j int) bool { return openIDs[i] < openIDs[j] })
	w.Int(len(openIDs))
	for _, id := range openIDs {
		w.U64(uint64(id))
		w.Int(m.opens[id])
	}
	sizeIDs := make([]namespace.InodeID, 0, len(m.sizePending))
	for id := range m.sizePending {
		sizeIDs = append(sizeIDs, id)
	}
	sort.Slice(sizeIDs, func(i, j int) bool { return sizeIDs[i] < sizeIDs[j] })
	w.Int(len(sizeIDs))
	for _, id := range sizeIDs {
		w.U64(uint64(id))
		w.I64(m.sizePending[id])
	}
	m.cache.SnapshotTo(w)
	m.store.SnapshotTo(w)
}

// RestoreFrom applies a snapshot onto a freshly built node with the
// same config; resolve maps inode IDs to the restored namespace.
func (m *MDS) RestoreFrom(r *snap.Reader, resolve func(namespace.InodeID) (*namespace.Inode, bool)) error {
	m.failed = r.Bool()
	m.slow = r.F64()
	m.fwdSeq = r.U64()
	for _, dc := range [...]interface {
		SetState(float64, sim.Time)
	}{m.opsRate, m.missRate} {
		v := r.F64()
		last := sim.Time(r.I64())
		dc.SetState(v, last)
	}
	completed := r.U64()
	submitted := r.U64()
	busy := sim.Time(r.I64())
	last := sim.Time(r.I64())
	m.cpu.SetStatsState(completed, submitted, busy, last)
	for _, f := range m.Stats.statFields() {
		*f = r.U64()
	}
	no := r.Int()
	for i := 0; i < no; i++ {
		id := namespace.InodeID(r.U64())
		m.opens[id] = r.Int()
	}
	ns := r.Int()
	for i := 0; i < ns; i++ {
		id := namespace.InodeID(r.U64())
		m.sizePending[id] = r.I64()
	}
	if err := m.cache.RestoreFrom(r, resolve); err != nil {
		return fmt.Errorf("mds %d: %w", m.id, err)
	}
	if err := m.store.RestoreFrom(r); err != nil {
		return fmt.Errorf("mds %d: %w", m.id, err)
	}
	// The slow factor also scales the store's service times; reapply it
	// so the pair stays consistent (the store serialized its own factor,
	// but a failed node's recovery path resets both through SetSlow).
	if m.slow > 1 {
		m.store.SetSlow(m.slow)
	}
	return nil
}

// Package cache implements the MDS metadata cache. Two properties from
// the paper drive the design:
//
//   - Hierarchical consistency (§4.1): each MDS caches the prefix
//     (ancestor) inodes of everything in its cache, so the cached subset
//     of the hierarchy is always a tree. Only leaf items may be expired:
//     a directory cannot be evicted while cached items remain beneath it.
//     The cache enforces this with per-entry pin counts.
//
//   - Prefetch demotion (§4.5): directory contents prefetched alongside a
//     requested item are inserted "near the tail of the cache's LRU list"
//     so potentially-useful data cannot displace known-useful data. The
//     cache is a segmented LRU: a hot segment for demand-loaded entries
//     and a warm segment for prefetched ones; eviction drains the warm
//     segment first, and a warm hit promotes the entry to the hot MRU.
//
// Entries are classified (authoritative, prefix, replica) so experiments
// can measure the fraction of cache memory consumed by replicated prefix
// inodes (Figure 3).
package cache

import (
	"fmt"

	"dynmds/internal/namespace"
)

// Class describes why an entry is in the cache.
type Class uint8

// Entry classes.
const (
	// Auth: this MDS is authoritative for the item and it was demand
	// loaded (or created) here.
	Auth Class = iota
	// Prefix: an ancestor directory cached only to permit path
	// traversal / anchor a subtree; the interesting item is below it.
	Prefix
	// Replica: a read-only copy of an item another MDS is authoritative
	// for (traffic control or remote prefix).
	Replica
)

func (c Class) String() string {
	switch c {
	case Auth:
		return "auth"
	case Prefix:
		return "prefix"
	case Replica:
		return "replica"
	}
	return "unknown"
}

// Entry is a cached metadata record.
type Entry struct {
	Ino   *namespace.Inode
	Class Class

	// pins counts cached children; an entry with pins > 0 must not be
	// evicted (leaf-only expiry).
	pins int
	// parent is the entry this one pinned at insert time. It is kept
	// explicitly (rather than re-deriving from Ino.Parent()) because
	// renames and unlinks move inodes while they are cached; the pin
	// must be released on exactly the entry it was taken on.
	parent *Entry
	hot    bool
	// detached entries (Lazy Hybrid) do not participate in the
	// hierarchical pinning protocol: LH's dual-entry ACLs remove the
	// need to keep ancestors cached.
	detached bool
	prev     *Entry
	next     *Entry
}

// Pinned reports whether the entry is protected from eviction.
func (e *Entry) Pinned() bool { return e.pins > 0 }

// list is an intrusive doubly-linked LRU list; head = MRU, tail = LRU.
type list struct {
	head, tail *Entry
	n          int
}

func (l *list) pushFront(e *Entry) {
	e.prev, e.next = nil, l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.n++
}

func (l *list) remove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

// Stats counts cache activity since construction.
type Stats struct {
	Hits, Misses     uint64
	Inserts, Evicts  uint64
	PinBlockedEvicts uint64
}

// Cache is a bounded, segmented-LRU metadata cache.
type Cache struct {
	capacity int
	// byID is a direct-indexed presence table: InodeIDs are allocated
	// sequentially and never reused, so index = ID. One pointer per ID
	// ever seen costs a few MB per node at simulation scale and turns
	// the hottest operation in the whole simulator — "is this record
	// cached?" on every path component of every request — from a map
	// probe into an array load.
	byID []*Entry
	n    int
	hot  list
	warm list

	// classCount tracks entries per class for O(1) prefix accounting.
	classCount [3]int

	// OnEvict, if set, is called after an entry has been removed by
	// eviction (not by Remove); the MDS uses it to notify authorities
	// that a replica was discarded (§4.2).
	OnEvict func(*Entry)

	Stats Stats
}

// New creates a cache bounded to capacity entries. Capacity must be
// positive.
func New(capacity int) *Cache {
	if capacity < 1 {
		panic("cache: capacity must be >= 1")
	}
	return &Cache{capacity: capacity}
}

// lookup returns the entry for id, or nil.
func (c *Cache) lookup(id namespace.InodeID) *Entry {
	if uint64(id) < uint64(len(c.byID)) {
		return c.byID[id]
	}
	return nil
}

// store records the entry for id, growing the table as the ID space
// grows (IDs are monotonically allocated, so growth is rare and the
// doubling headroom amortizes it away).
func (c *Cache) store(id namespace.InodeID, e *Entry) {
	if uint64(id) >= uint64(len(c.byID)) {
		grown := make([]*Entry, 2*int(id)+1)
		copy(grown, c.byID)
		c.byID = grown
	}
	c.byID[id] = e
	c.n++
}

func (c *Cache) erase(id namespace.InodeID) {
	c.byID[id] = nil
	c.n--
}

// forEach visits every entry (hot then warm segment, MRU first).
func (c *Cache) forEach(fn func(*Entry)) {
	for e := c.hot.head; e != nil; e = e.next {
		fn(e)
	}
	for e := c.warm.head; e != nil; e = e.next {
		fn(e)
	}
}

// Cap returns the configured capacity.
func (c *Cache) Cap() int { return c.capacity }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return c.n }

// CountClass returns the number of entries with the given class.
func (c *Cache) CountClass(cl Class) int { return c.classCount[cl] }

// PrefixFraction returns the fraction of cache entries serving as
// prefix (ancestor) inodes — Figure 3's metric. An entry is a prefix if
// cached items beneath it require it for path traversal, i.e. it is
// pinned by cached children; replicated prefixes on hashed strategies
// are included, and Lazy Hybrid's detached records never are.
func (c *Cache) PrefixFraction() float64 {
	if c.n == 0 {
		return 0
	}
	pinned := 0
	c.forEach(func(e *Entry) {
		if e.pins > 0 {
			pinned++
		}
	})
	return float64(pinned) / float64(c.n)
}

// Contains reports presence without touching LRU state or stats.
func (c *Cache) Contains(id namespace.InodeID) bool {
	return c.lookup(id) != nil
}

// Peek returns the entry without touching LRU state or stats.
func (c *Cache) Peek(id namespace.InodeID) (*Entry, bool) {
	e := c.lookup(id)
	return e, e != nil
}

// Get looks up an entry, recording a hit or miss and refreshing its
// recency (a warm entry is promoted to the hot segment).
func (c *Cache) Get(id namespace.InodeID) (*Entry, bool) {
	e := c.lookup(id)
	if e == nil {
		c.Stats.Misses++
		return nil, false
	}
	c.Stats.Hits++
	c.touch(e)
	return e, true
}

func (c *Cache) touch(e *Entry) {
	if e.hot {
		c.hot.remove(e)
	} else {
		c.warm.remove(e)
		e.hot = true
	}
	c.hot.pushFront(e)
}

// Insert adds (or refreshes) an entry for ino. warm selects the
// prefetch segment. The entry's parent must already be cached unless ino
// is the root — that is the hierarchical-consistency invariant; callers
// use InsertPath to bring in the ancestor chain. Inserting may evict
// unpinned entries to stay within capacity.
func (c *Cache) Insert(ino *namespace.Inode, cl Class, warm bool) (*Entry, error) {
	if e := c.lookup(ino.ID); e != nil {
		// Refresh: upgrade class priority (Auth > Replica > Prefix in
		// specificity: a direct request upgrades a prefix entry).
		if cl == Auth || (cl == Replica && e.Class == Prefix) {
			c.classCount[e.Class]--
			e.Class = cl
			c.classCount[cl]++
		}
		if !warm {
			c.touch(e)
		}
		return e, nil
	}
	parent := ino.Parent()
	var pe *Entry
	if parent != nil {
		pe = c.lookup(parent.ID)
		if pe == nil {
			return nil, fmt.Errorf("cache: inserting %s without cached parent", ino)
		}
	}
	e := &Entry{Ino: ino, Class: cl, hot: !warm, parent: pe}
	c.store(ino.ID, e)
	c.classCount[cl]++
	if pe != nil {
		pe.pins++
	}
	if warm {
		c.warm.pushFront(e)
	} else {
		c.hot.pushFront(e)
	}
	c.Stats.Inserts++
	// The new entry is protected from its own insertion's eviction pass:
	// a path insert brings in ancestors one at a time, and a chain link
	// must survive until its child pins it.
	c.evictToCapacity(e)
	return e, nil
}

// InsertDetached caches ino without requiring (or pinning) its parent.
// Lazy Hybrid MDS nodes cache scattered file records with no ancestor
// chain; the dual-entry ACL carries the effective permissions.
func (c *Cache) InsertDetached(ino *namespace.Inode, cl Class, warm bool) *Entry {
	if e := c.lookup(ino.ID); e != nil {
		if !warm {
			c.touch(e)
		}
		return e
	}
	e := &Entry{Ino: ino, Class: cl, hot: !warm, detached: true}
	c.store(ino.ID, e)
	c.classCount[cl]++
	if warm {
		c.warm.pushFront(e)
	} else {
		c.hot.pushFront(e)
	}
	c.Stats.Inserts++
	c.evictToCapacity(e)
	return e
}

// InsertPath caches ino along with any missing ancestors (as Prefix
// entries), maintaining the tree invariant.
func (c *Cache) InsertPath(ino *namespace.Inode, cl Class, warm bool) (*Entry, error) {
	for _, anc := range ino.Ancestors() {
		if !c.Contains(anc.ID) {
			// Ancestors are always demand-relevant: hot.
			if _, err := c.Insert(anc, Prefix, false); err != nil {
				return nil, err
			}
		}
	}
	return c.Insert(ino, cl, warm)
}

// evictToCapacity removes unpinned entries, draining the warm segment
// before the hot one. If every entry is pinned the cache is allowed to
// exceed capacity (the next insert retries).
func (c *Cache) evictToCapacity(protect *Entry) {
	for c.n > c.capacity {
		e := c.victim(&c.warm, protect)
		if e == nil {
			e = c.victim(&c.hot, protect)
		}
		if e == nil {
			c.Stats.PinBlockedEvicts++
			return
		}
		c.drop(e, true)
	}
}

// victim scans from the LRU tail for the first unpinned entry.
func (c *Cache) victim(l *list, protect *Entry) *Entry {
	for e := l.tail; e != nil; e = e.prev {
		if e.pins == 0 && e != protect {
			return e
		}
	}
	return nil
}

func (c *Cache) drop(e *Entry, evicted bool) {
	if e.hot {
		c.hot.remove(e)
	} else {
		c.warm.remove(e)
	}
	c.erase(e.Ino.ID)
	c.classCount[e.Class]--
	if e.parent != nil {
		e.parent.pins--
		e.parent = nil
	}
	if evicted {
		c.Stats.Evicts++
		if c.OnEvict != nil {
			c.OnEvict(e)
		}
	}
}

// Remove explicitly discards an entry (e.g. after migrating a subtree
// away). It fails if the entry is pinned by cached children.
func (c *Cache) Remove(id namespace.InodeID) error {
	e := c.lookup(id)
	if e == nil {
		return nil
	}
	if e.pins > 0 {
		return fmt.Errorf("cache: entry %s is pinned by %d children", e.Ino, e.pins)
	}
	c.drop(e, false)
	return nil
}

// RemoveSubtree discards every cached entry at or below root, children
// before parents so pins unwind. Returns the number removed.
func (c *Cache) RemoveSubtree(root *namespace.Inode) int {
	var victims []*Entry
	c.forEach(func(e *Entry) {
		if e.Ino == root || root.IsAncestorOf(e.Ino) {
			victims = append(victims, e)
		}
	})
	// Deepest first so parents are unpinned before their turn.
	for removed := 0; removed < len(victims); {
		progress := false
		for _, e := range victims {
			if c.lookup(e.Ino.ID) == nil {
				continue
			}
			if e.pins == 0 {
				c.drop(e, false)
				removed++
				progress = true
			}
		}
		if !progress {
			break // remaining entries pinned from outside the subtree
		}
	}
	n := 0
	for _, e := range victims {
		if c.lookup(e.Ino.ID) == nil {
			n++
		}
	}
	return n
}

// Clear discards every entry at once, with no eviction notifications:
// crash semantics — the node's volatile memory is lost, not evicted.
// fn, when non-nil, is called once per entry before the wipe (e.g. to
// shed per-inode bookkeeping naming this node). Returns the number of
// entries discarded.
func (c *Cache) Clear(fn func(*Entry)) int {
	var victims []*Entry
	c.forEach(func(e *Entry) { victims = append(victims, e) })
	if fn != nil {
		for _, e := range victims {
			fn(e)
		}
	}
	// Children before parents so pins unwind; every entry goes, so the
	// fixpoint always completes.
	removed := 0
	for removed < len(victims) {
		progress := false
		for _, e := range victims {
			if c.lookup(e.Ino.ID) == nil || e.pins > 0 {
				continue
			}
			c.drop(e, false)
			removed++
			progress = true
		}
		if !progress {
			break
		}
	}
	return removed
}

// ForEach visits every entry in LRU-segment order (hot then warm, MRU
// first). The callback must not mutate the cache.
func (c *Cache) ForEach(fn func(*Entry)) { c.forEach(fn) }

// EntriesUnder collects the entries at or below root, in the same
// deterministic order ForEach uses.
func (c *Cache) EntriesUnder(root *namespace.Inode) []*Entry {
	var out []*Entry
	c.forEach(func(e *Entry) {
		if e.Ino == root || root.IsAncestorOf(e.Ino) {
			out = append(out, e)
		}
	})
	return out
}

// NoteMiss records a demand lookup that found its record absent.
// Callers that probe with Contains (to run their own fetch path) use
// this to keep hit-rate accounting truthful.
func (c *Cache) NoteMiss() { c.Stats.Misses++ }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	total := c.Stats.Hits + c.Stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Stats.Hits) / float64(total)
}

// CheckInvariants validates pin counts, segment membership, and the
// cached-subset-is-a-tree property. For tests.
func (c *Cache) CheckInvariants() error {
	pins := make(map[*Entry]int)
	var err error
	c.forEach(func(e *Entry) {
		if err != nil {
			return
		}
		if e.detached {
			if e.parent != nil {
				err = fmt.Errorf("cache: detached %s holds a pin", e.Ino)
			}
			return
		}
		if e.parent != nil {
			if got := c.lookup(e.parent.Ino.ID); got != e.parent {
				err = fmt.Errorf("cache: %s pins an entry not in the cache", e.Ino)
				return
			}
			pins[e.parent]++
		}
	})
	if err != nil {
		return err
	}
	c.forEach(func(e *Entry) {
		if err == nil && e.pins != pins[e] {
			err = fmt.Errorf("cache: %s pin count %d, want %d", e.Ino, e.pins, pins[e])
		}
	})
	if err != nil {
		return err
	}
	count := 0
	for e := c.hot.head; e != nil; e = e.next {
		if !e.hot {
			return fmt.Errorf("cache: warm entry in hot list")
		}
		count++
	}
	for e := c.warm.head; e != nil; e = e.next {
		if e.hot {
			return fmt.Errorf("cache: hot entry in warm list")
		}
		count++
	}
	if count != c.n {
		return fmt.Errorf("cache: list count %d != table count %d", count, c.n)
	}
	total := 0
	for _, n := range c.classCount {
		total += n
	}
	if total != c.n {
		return fmt.Errorf("cache: class counts %v != size %d", c.classCount, c.n)
	}
	return nil
}
